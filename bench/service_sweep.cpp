/**
 * @file
 * Continuous-operation service sweep (DESIGN.md §14): completion-latency
 * SLO curves (p50/p99/p999) of the pod service versus offered inference
 * load, under a healthy pod, a flaky fabric (transient transfer
 * failures), and a mid-run chip death with elastic recovery. The
 * arrival-rate grid is expressed as utilization of the measured
 * fault-free request service rate, so the same sweep stays meaningful
 * if the tower or the hardware model changes.
 *
 * Flags: --json (machine-readable output only), --quick (the subset the
 * sanitize suite runs), --seed N (arrival/fault seed, stamped into the
 * output), --out FILE (also write the JSON to FILE).
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/service/pod_service.h"
#include "models/fault_presets.h"

using namespace overlap;

namespace {

struct Scenario {
    std::string name;
    FaultSpec spec;
    /// The sweep fails loudly if this scenario does not recover.
    bool expect_recovery = false;
};

struct SweepPoint {
    std::string scenario;
    double utilization = 0.0;
    double rate_hz = 0.0;
    ServiceReport report;
    std::string error;
};

/** Fault-free latency of one inference request — the calibration the
 * utilization grid is expressed against. */
StatusOr<double>
MeasureBaseRequestSeconds(const Mesh& mesh,
                          const InferenceTowerSpec& tower,
                          const CompilerOptions& options)
{
    auto module = BuildInferenceTowerModule(mesh, tower);
    if (!module.ok()) return module.status();
    OverlapCompiler compiler{options};
    auto compile = compiler.Compile(module->get());
    if (!compile.ok()) return compile.status();
    PodSimulator simulator(mesh, options.hardware);
    auto result = simulator.Run(**module);
    if (!result.ok()) return result.status();
    return result->step_seconds;
}

std::string
PointJson(const SweepPoint& point)
{
    return StrCat("    {\"scenario\": \"", point.scenario,
                  "\", \"utilization\": ", point.utilization,
                  ", \"inference_rate_hz\": ", point.rate_hz,
                  ",\n     \"report\": ", point.report.ToJson(), "}");
}

/** The cross-point invariants: conservation of every request, a
 * bounded queue, and — for the chip-death scenario — an actual
 * recovery onto a shrunken survivor mesh. */
std::string
ValidatePoint(const SweepPoint& point, int64_t max_queue_depth,
              int64_t full_devices, bool expect_recovery)
{
    const ServiceReport& r = point.report;
    if (!r.inference.Consistent() || !r.training.Consistent()) {
        return "request accounting does not balance";
    }
    // +1: a recovery re-queue may transiently exceed the bound.
    if (r.peak_queue_depth > max_queue_depth + 1) {
        return StrCat("queue depth ", r.peak_queue_depth,
                      " exceeded the bound ", max_queue_depth);
    }
    if (expect_recovery) {
        if (r.recoveries.empty()) {
            return "chip death did not trigger a recovery";
        }
        if (r.final_mesh.num_devices() >= full_devices) {
            return "recovery did not shrink the mesh";
        }
    }
    return "";
}

}  // namespace

int
main(int argc, char** argv)
{
    bool json_only = false;
    bool quick = false;
    uint64_t seed = 1;
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json_only = true;
        else if (std::strcmp(argv[i], "--quick") == 0) quick = true;
        else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
            seed = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: service_sweep [--json] [--quick] "
                         "[--seed N] [--out FILE]\n");
            return 2;
        }
    }

    const Mesh mesh(4);
    const double duration = quick ? 0.02 : 0.05;
    const std::vector<double> utilizations =
        quick ? std::vector<double>{0.5, 1.1}
              : std::vector<double>{0.3, 0.6, 0.9, 1.2};

    ServiceOptions base_options;
    base_options.arrivals.seed = seed;
    base_options.arrivals.duration_seconds = duration;
    base_options.arrivals.training_rate_hz = 500.0;
    // Force the §5.2 decomposition (as recovery_sweep does): the sweep
    // is about the service under load, and the transient-fault curve
    // only bites when the steps actually ride on async permutes.
    base_options.compiler.decompose.use_cost_model = false;

    auto base = MeasureBaseRequestSeconds(mesh, base_options.inference,
                                          base_options.compiler);
    if (!base.ok()) {
        std::fprintf(stderr, "calibration failed: %s\n",
                     base.status().ToString().c_str());
        return 1;
    }
    const double service_rate_hz = 1.0 / base.value();
    base_options.arrivals.inference_slo_seconds = 20.0 * base.value();

    const std::vector<Scenario> scenarios = {
        {"no_fault", FaultSpec{}, false},
        {"transient_fault",
         FlakyFabric(/*failure_probability=*/0.02, seed).spec, false},
        {"chip_death", ChipDeath(/*chip=*/1, /*fail_step=*/8).spec,
         true},
    };

    if (!json_only) {
        bench::Banner(
            StrCat("Service sweep on ", mesh.ToString(), ": ",
                   duration * 1e3, " ms of open-loop traffic, "
                   "request = ", HumanTime(base.value()),
                   " (", service_rate_hz, " req/s)"),
            "continuous operation under load + faults, DESIGN.md §14");
        std::printf("%-16s %-5s  %9s %9s %9s  %6s %6s %5s %4s\n",
                    "scenario", "util", "p50", "p99", "p999", "good%",
                    "shed", "viol", "rec");
    }

    std::vector<SweepPoint> sweep;
    for (const Scenario& scenario : scenarios) {
        for (double utilization : utilizations) {
            SweepPoint point;
            point.scenario = scenario.name;
            point.utilization = utilization;
            point.rate_hz = utilization * service_rate_hz;

            ServiceOptions options = base_options;
            options.arrivals.inference_rate_hz = point.rate_hz;
            options.compiler.fault = scenario.spec;
            auto report = PodService(mesh, options).Run();
            if (!report.ok()) {
                point.error = report.status().ToString();
            } else {
                point.report = std::move(report).value();
                point.error = ValidatePoint(point,
                                            options.max_queue_depth,
                                            mesh.num_devices(),
                                            scenario.expect_recovery);
            }
            if (!point.error.empty()) {
                std::fprintf(stderr, "%s @ %.1fx: %s\n",
                             point.scenario.c_str(), utilization,
                             point.error.c_str());
                return 1;
            }

            if (!json_only) {
                const ClassStats& s = point.report.inference;
                int64_t shed = s.shed_at_admission +
                               s.shed_under_backlog + s.shed_expired;
                double good =
                    s.arrivals > 0
                        ? 100.0 * static_cast<double>(s.goodput) /
                              static_cast<double>(s.arrivals)
                        : 0.0;
                std::printf(
                    "%-16s %-5.2f  %9s %9s %9s  %5.1f%% %6lld %5lld "
                    "%4zu%s\n",
                    point.scenario.c_str(), utilization,
                    HumanTime(s.p50_latency_seconds).c_str(),
                    HumanTime(s.p99_latency_seconds).c_str(),
                    HumanTime(s.p999_latency_seconds).c_str(), good,
                    static_cast<long long>(shed),
                    static_cast<long long>(s.slo_violations),
                    point.report.recoveries.size(),
                    point.report.degraded_blocking ? " (blocking)"
                                                   : "");
            }
            sweep.push_back(std::move(point));
        }
    }

    if (!json_only) {
        std::printf(
            "\nBelow saturation the curves are flat near the service "
            "time; at 1.2x the bounded\nqueue sheds the excess "
            "(counted, never silent). The chip-death rows absorb "
            "one\nelastic recovery: its outage surfaces as p99/p999 "
            "tail and SLO violations, and\nthe service finishes on "
            "the 3-device survivor mesh.\n\nJSON:\n");
    }

    std::vector<std::string> point_json;
    point_json.reserve(sweep.size());
    for (const SweepPoint& point : sweep) {
        point_json.push_back(PointJson(point));
    }
    std::string json = StrCat(
        "{\n  \"bench\": \"service_sweep\",\n  \"seed\": ", seed,
        ",\n  \"quick\": ", quick ? "true" : "false",
        ",\n  \"mesh\": \"", mesh.ToString(),
        "\",\n  \"duration_s\": ", duration,
        ",\n  \"base_request_s\": ", base.value(),
        ",\n  \"service_rate_hz\": ", service_rate_hz,
        ",\n  \"training_rate_hz\": ",
        base_options.arrivals.training_rate_hz,
        ",\n  \"inference_slo_s\": ",
        base_options.arrivals.inference_slo_seconds,
        ",\n  \"max_queue_depth\": ", base_options.max_queue_depth,
        ",\n  \"shed_watermark\": ", base_options.shed_watermark,
        ",\n  \"checkpoint_interval\": ",
        base_options.checkpoint_interval, ",\n  \"sweep\": [\n",
        StrJoin(point_json, ",\n"), "\n  ]\n}\n");
    std::printf("%s", json.c_str());

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
            return 1;
        }
        out << json;
        if (!json_only) {
            std::printf("written to %s\n", out_path.c_str());
        }
    }
    return 0;
}
