/**
 * @file
 * Overlap-efficiency report (DESIGN.md §13): how well did the §5.5 cost
 * model predict what the simulator measured?
 *
 *   overlap_report [--quick] [--json] [--force] [--check] [--out FILE]
 *                  [--trace FILE] [--model NAME]
 *
 * Part 1 drives the shared overlap-report site space
 * (difftest::OverlapReportSiteSpace(): one site per §5.1 decomposition
 * case) through the full pipeline with the calibrated §5.5 gate,
 * simulates each compiled module with tracing, and emits one JSON
 * record per site: the gate's cost inputs (comp_t, comm_t, comm_t_ring,
 * extra_t), the predicted hidden-comm fraction and speedup, the
 * simulated total / exposed / hidden comm from the trace, the blocking
 * baseline's step for the actual speedup, and the per-site prediction
 * error. Sites the gate rejects are additionally re-compiled with the
 * gate forced open ("forced" record) so their hidden-fraction
 * prediction is graded against a real decomposed trace too — and so
 * the rejection itself is auditable (forced actual speedup < 1).
 *
 * Part 2 (skipped with --quick) runs the same analysis on a whole model
 * layer (--model, default the 32B GPT (GPT_32B) of Table 2) via
 * AnalyzeModelOverlap; --trace additionally writes that run's unified
 * Chrome trace (compiler + simulator lanes) for chrome://tracing.
 *
 * --force disables the cost gate (every site decomposed) — the same
 * ablation knob as DecomposeOptions::use_cost_model=false.
 *
 * --check is the CI regression gate (DESIGN.md §15): exit nonzero when
 * the mean absolute hidden-fraction prediction error exceeds 0.15, or
 * any gate-accepted site (or the model run) simulates an actual
 * speedup below 1 − 0.02.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/overlap_report.h"
#include "difftest/calibration.h"
#include "difftest/difftest.h"
#include "sim/trace_export.h"

using namespace overlap;
using namespace overlap::difftest;

namespace {

struct SiteRun {
    SiteSpec spec;
    OverlapReport report;
    double baseline_step_seconds = 0.0;
    /// Filled for gate-rejected sites: the same site re-compiled with
    /// the gate forced open, so the hidden-fraction prediction can be
    /// graded against the decomposed loop it describes.
    bool has_forced = false;
    OverlapReport forced_report;
};

StatusOr<SiteRun>
RunSite(const SiteSpec& spec, bool force)
{
    SiteRun run;
    run.spec = spec;

    auto module = BuildSiteModule(spec);
    if (!module.ok()) return module.status();
    CompilerOptions options;
    options.decompose.use_cost_model = !force;
    OverlapCompiler compiler(options);
    auto compile = compiler.Compile(module->get());
    if (!compile.ok()) return compile.status();

    PodSimulator simulator(spec.mesh(), options.hardware);
    auto sim = simulator.Run(**module, /*collect_trace=*/true);
    if (!sim.ok()) return sim.status();

    auto report = BuildOverlapReport(compile.value(), sim.value());
    if (!report.ok()) return report.status();
    run.report = std::move(report).value();

    // Blocking baseline of the same site for the actual speedup.
    auto blocking = BuildSiteModule(spec);
    if (!blocking.ok()) return blocking.status();
    OverlapCompiler baseline(CompilerOptions::Baseline());
    auto baseline_compile = baseline.Compile(blocking->get());
    if (!baseline_compile.ok()) return baseline_compile.status();
    auto baseline_sim = simulator.Run(**blocking);
    if (!baseline_sim.ok()) return baseline_sim.status();
    run.baseline_step_seconds = baseline_sim->step_seconds;
    run.report.baseline_step_seconds = run.baseline_step_seconds;
    run.report.actual_speedup =
        sim->step_seconds > 0.0
            ? baseline_sim->step_seconds / sim->step_seconds
            : 1.0;
    return run;
}

/**
 * The site's hidden-fraction prediction error, graded against whichever
 * run actually traced the decomposed loop (the gated run when the gate
 * accepted, the forced run otherwise). Returns false when neither run
 * produced a graded site.
 */
bool
GradedError(const SiteRun& run, double* error)
{
    if (run.report.error_sites > 0) {
        *error = run.report.mean_abs_hidden_fraction_error;
        return true;
    }
    if (run.has_forced && run.forced_report.error_sites > 0) {
        *error = run.forced_report.mean_abs_hidden_fraction_error;
        return true;
    }
    return false;
}

std::string
SiteRunJson(const SiteRun& run)
{
    std::string forced = run.has_forced
                             ? run.forced_report.ToJson()
                             : std::string("null");
    return StrCat("{\"case\":\"", SiteCaseName(run.spec.site_case),
                  "\",\"spec\":\"", run.spec.ToString(),
                  "\",\"report\":", run.report.ToJson(),
                  ",\"forced\":", forced, "}");
}

void
PrintSiteRun(const SiteRun& run)
{
    std::printf("case %-14s", SiteCaseName(run.spec.site_case));
    for (const SiteOverlapReport& site : run.report.sites) {
        std::printf(
            "  %s: predicted hidden %.1f%% speedup %.3fx | simulated "
            "hidden %.1f%% actual %.3fx\n",
            site.reason.c_str(), site.predicted_hidden_fraction * 100.0,
            site.predicted_speedup, site.sim_hidden_fraction * 100.0,
            run.report.actual_speedup);
    }
    if (run.report.sites.empty()) std::printf("  (no matched sites)\n");
    if (run.has_forced) {
        std::printf(
            "    forced-decomposed audit: simulated hidden %.1f%%, "
            "actual %.3fx (gate rejection %s)\n",
            run.forced_report.hidden_fraction * 100.0,
            run.forced_report.actual_speedup,
            run.forced_report.actual_speedup < 1.0 ? "justified"
                                                   : "questionable");
    }
    double err = 0.0;
    if (GradedError(run, &err)) {
        std::printf("    |hidden-fraction error| %.3f\n", err);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    bool json_only = false;
    bool force = false;
    bool check = false;
    std::string out_path = "BENCH_overlap_report.json";
    std::string trace_path;
    std::string model_name = "GPT_32B";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) quick = true;
        else if (std::strcmp(argv[i], "--json") == 0) json_only = true;
        else if (std::strcmp(argv[i], "--force") == 0) force = true;
        else if (std::strcmp(argv[i], "--check") == 0) check = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
            trace_path = argv[++i];
        else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc)
            model_name = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: overlap_report [--quick] [--json] "
                         "[--force] [--check] [--out FILE] "
                         "[--trace FILE] [--model NAME]\n");
            return 2;
        }
    }

    // DESIGN.md §15 gate thresholds.
    const double kMaxMeanHiddenFractionError = 0.15;
    const double kSpeedupTolerance = 0.02;

    if (!json_only) {
        bench::Banner("Overlap-efficiency report",
                      "§5.5 cost model vs. simulated timeline, DESIGN.md "
                      "§13");
    }

    std::vector<std::string> site_json;
    std::vector<std::string> gate_failures;
    double error_sum = 0.0;
    int64_t error_count = 0;
    for (const SiteSpec& spec : OverlapReportSiteSpace()) {
        auto run = RunSite(spec, force);
        if (!run.ok()) {
            std::fprintf(stderr, "site %s failed: %s\n",
                         SiteCaseName(spec.site_case),
                         run.status().ToString().c_str());
            return 1;
        }
        // Grade rejected sites against the loop they would have
        // emitted: without this the error gate only ever sees the
        // gate's accepted predictions, and a model drifting toward
        // "reject everything" would pass trivially.
        if (run->report.error_sites == 0) {
            auto forced_run = RunSite(spec, /*force=*/true);
            if (!forced_run.ok()) {
                std::fprintf(stderr, "forced site %s failed: %s\n",
                             SiteCaseName(spec.site_case),
                             forced_run.status().ToString().c_str());
                return 1;
            }
            run->has_forced = true;
            run->forced_report = std::move(forced_run->report);
        }
        double err = 0.0;
        if (GradedError(run.value(), &err)) {
            error_sum += err;
            ++error_count;
        }
        for (const SiteOverlapReport& site : run->report.sites) {
            if (site.decomposed &&
                run->report.actual_speedup < 1.0 - kSpeedupTolerance) {
                gate_failures.push_back(StrCat(
                    "site ", SiteCaseName(spec.site_case),
                    " decomposed but simulated actual speedup ",
                    run->report.actual_speedup, " < ",
                    1.0 - kSpeedupTolerance));
            }
        }
        if (!json_only) PrintSiteRun(run.value());
        site_json.push_back(SiteRunJson(run.value()));
    }
    double mean_error =
        error_count > 0 ? error_sum / static_cast<double>(error_count)
                        : 0.0;
    if (mean_error > kMaxMeanHiddenFractionError) {
        gate_failures.push_back(
            StrCat("mean |hidden-fraction error| ", mean_error, " > ",
                   kMaxMeanHiddenFractionError));
    }

    std::string model_json = "null";
    if (!quick) {
        const ModelConfig* model = FindModel(model_name);
        if (model == nullptr) {
            std::fprintf(stderr, "unknown model '%s'\n",
                         model_name.c_str());
            return 1;
        }
        auto analysis = AnalyzeModelOverlap(*model, CompilerOptions());
        if (!analysis.ok()) {
            std::fprintf(stderr, "model analysis failed: %s\n",
                         analysis.status().ToString().c_str());
            return 1;
        }
        model_json = analysis->ToJson();
        if (analysis->report.actual_speedup > 0.0 &&
            analysis->report.actual_speedup < 1.0 - kSpeedupTolerance &&
            analysis->report.decomposed_sites() > 0) {
            gate_failures.push_back(StrCat(
                "model ", model->name, " decomposed ",
                analysis->report.decomposed_sites(),
                " sites but simulated actual speedup ",
                analysis->report.actual_speedup, " < ",
                1.0 - kSpeedupTolerance));
        }
        if (!json_only) {
            std::printf("\nmodel %s: overlap %.3f ms vs baseline %.3f ms "
                        "(%.3fx), layer comm %.1f%% hidden\n",
                        model->name.c_str(),
                        analysis->overlap.step_seconds * 1e3,
                        analysis->baseline.step_seconds * 1e3,
                        analysis->report.actual_speedup,
                        analysis->report.hidden_fraction * 100.0);
        }
        if (!trace_path.empty()) {
            std::ofstream trace_file(trace_path);
            trace_file << analysis->trace_json;
            if (!json_only) {
                std::printf("unified Chrome trace written to %s\n",
                            trace_path.c_str());
            }
        }
    }

    std::string doc = StrCat(
        "{\"sites\":[", StrJoin(site_json, ","),
        "],\"mean_abs_hidden_fraction_error\":", mean_error,
        ",\"error_sites\":", error_count,
        ",\"error_gate\":{\"threshold\":", kMaxMeanHiddenFractionError,
        ",\"pass\":", gate_failures.empty() ? "true" : "false",
        "},\"model\":", model_json, "}\n");
    if (json_only) std::printf("%s", doc.c_str());
    std::ofstream out(out_path);
    out << doc;
    if (!json_only) {
        std::printf("\nmean |hidden-fraction error| %.3f over %lld "
                    "graded sites (gate %.2f)\n",
                    mean_error, static_cast<long long>(error_count),
                    kMaxMeanHiddenFractionError);
        std::printf("report written to %s\n", out_path.c_str());
    }
    if (check && !gate_failures.empty()) {
        for (const std::string& failure : gate_failures) {
            std::fprintf(stderr, "CHECK FAILED: %s\n", failure.c_str());
        }
        return 1;
    }
    return 0;
}
