/**
 * @file
 * Overlap-efficiency report (DESIGN.md §13): how well did the §5.5 cost
 * model predict what the simulator measured?
 *
 *   overlap_report [--quick] [--json] [--force] [--out FILE]
 *                  [--trace FILE] [--model NAME]
 *
 * Part 1 drives all four decomposition cases of the paper — the three
 * AllGather-Einsum variants (partitioned label free / contracting /
 * batch, §5.1) and Einsum-ReduceScatter — through the full pipeline on
 * a difftest-style site sized so the §5.5 gate accepts, simulates each
 * compiled module with tracing, and emits one JSON record per site:
 * the gate's cost inputs (comp_t, comm_t, comm_t_ring, extra_t), the
 * predicted hidden-comm fraction and speedup, and the simulated total /
 * exposed / hidden comm from the trace, plus the blocking baseline's
 * simulated step time for the actual speedup.
 *
 * Part 2 (skipped with --quick) runs the same analysis on a whole model
 * layer (--model, default the 32B GPT (GPT_32B) of Table 2) via
 * AnalyzeModelOverlap; --trace additionally writes that run's unified
 * Chrome trace (compiler + simulator lanes) for chrome://tracing.
 *
 * --force disables the cost gate (every site decomposed) — the same
 * ablation knob as DecomposeOptions::use_cost_model=false.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/overlap_report.h"
#include "difftest/difftest.h"
#include "sim/trace_export.h"

using namespace overlap;
using namespace overlap::difftest;

namespace {

/**
 * A site the §5.5 gate accepts on default TPU-v4 numbers. Each case
 * needs its own proportions: the gate wins when the partial einsums
 * are big enough to hide the ring steps while the loop's combine and
 * slice traffic (HBM-side extra_t terms) stays below the wire time the
 * decomposition saves, and those terms scale with different extents
 * per case (e.g. the contracting-dim loop re-reads the full output
 * every iteration, the batch case slices the other batch operand).
 */
SiteSpec
SpecFor(SiteCase site_case)
{
    SiteSpec spec;
    spec.site_case = site_case;
    spec.mesh_dims = {4};
    spec.axis = 0;
    spec.side = 0;
    spec.dtype = DType::kF32;
    spec.data_seed = 7;
    switch (site_case) {
      case SiteCase::kAllGatherFree:
          // einsum (4e × c) · (c × f1): activation gather. The saved
          // wire time grows with c while the combine traffic only
          // tracks the output (4e × f1), so a fat contracting dim wins.
          spec.shard_extent = 64;
          spec.contract = 8192;
          spec.free1 = 4096;
          spec.free0 = 1;
          break;
      case SiteCase::kAllGatherContracting:
          // einsum (f0 × 4e) · (4e × f1): weight gather over the
          // contracting label. The loop re-accumulates the (f0 × f1)
          // output every iteration, so f1 must stay small while f0 and
          // the gathered extent carry the site's weight.
          spec.shard_extent = 2048;
          spec.free0 = 4096;
          spec.free1 = 2048;
          spec.contract = 1;
          break;
      case SiteCase::kAllGatherBatch:
          // einsum (4e × f0 × c) · (4e × c × f1), batch label gathered;
          // f1 ≈ 2e3 balances comp_t against the ring steps and the
          // per-iteration slices of the other batch operand.
          spec.shard_extent = 8;
          spec.free0 = 8192;
          spec.contract = 8192;
          spec.free1 = 2048;
          break;
      case SiteCase::kReduceScatter:
          // einsum (4e × 4c) · (4c × f1), output scattered over rows;
          // the decomposed ring moves *more* bytes than the blocking
          // bidirectional ReduceScatter, so a deep contracting dim must
          // hide the whole ring under the partial einsums.
          spec.shard_extent = 256;
          spec.contract = 8192;
          spec.free1 = 8192;
          spec.free0 = 1;
          break;
    }
    return spec;
}

struct SiteRun {
    SiteSpec spec;
    OverlapReport report;
    double baseline_step_seconds = 0.0;
};

StatusOr<SiteRun>
RunSite(const SiteSpec& spec, bool force)
{
    SiteRun run;
    run.spec = spec;

    auto module = BuildSiteModule(spec);
    if (!module.ok()) return module.status();
    CompilerOptions options;
    options.decompose.use_cost_model = !force;
    OverlapCompiler compiler(options);
    auto compile = compiler.Compile(module->get());
    if (!compile.ok()) return compile.status();

    PodSimulator simulator(spec.mesh(), options.hardware);
    auto sim = simulator.Run(**module, /*collect_trace=*/true);
    if (!sim.ok()) return sim.status();

    auto report = BuildOverlapReport(compile.value(), sim.value());
    if (!report.ok()) return report.status();
    run.report = std::move(report).value();

    // Blocking baseline of the same site for the actual speedup.
    auto blocking = BuildSiteModule(spec);
    if (!blocking.ok()) return blocking.status();
    OverlapCompiler baseline(CompilerOptions::Baseline());
    auto baseline_compile = baseline.Compile(blocking->get());
    if (!baseline_compile.ok()) return baseline_compile.status();
    auto baseline_sim = simulator.Run(**blocking);
    if (!baseline_sim.ok()) return baseline_sim.status();
    run.baseline_step_seconds = baseline_sim->step_seconds;
    run.report.baseline_step_seconds = run.baseline_step_seconds;
    run.report.actual_speedup =
        sim->step_seconds > 0.0
            ? baseline_sim->step_seconds / sim->step_seconds
            : 1.0;
    return run;
}

std::string
SiteRunJson(const SiteRun& run)
{
    return StrCat("{\"case\":\"", SiteCaseName(run.spec.site_case),
                  "\",\"spec\":\"", run.spec.ToString(),
                  "\",\"report\":", run.report.ToJson(), "}");
}

void
PrintSiteRun(const SiteRun& run)
{
    std::printf("case %-14s", SiteCaseName(run.spec.site_case));
    for (const SiteOverlapReport& site : run.report.sites) {
        std::printf(
            "  %s: predicted hidden %.1f%% speedup %.3fx | simulated "
            "hidden %.1f%% actual %.3fx\n",
            site.reason.c_str(), site.predicted_hidden_fraction * 100.0,
            site.predicted_speedup, site.sim_hidden_fraction * 100.0,
            run.report.actual_speedup);
    }
    if (run.report.sites.empty()) std::printf("  (no matched sites)\n");
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    bool json_only = false;
    bool force = false;
    std::string out_path = "BENCH_overlap_report.json";
    std::string trace_path;
    std::string model_name = "GPT_32B";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) quick = true;
        else if (std::strcmp(argv[i], "--json") == 0) json_only = true;
        else if (std::strcmp(argv[i], "--force") == 0) force = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
            trace_path = argv[++i];
        else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc)
            model_name = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: overlap_report [--quick] [--json] "
                         "[--force] [--out FILE] [--trace FILE] "
                         "[--model NAME]\n");
            return 2;
        }
    }

    if (!json_only) {
        bench::Banner("Overlap-efficiency report",
                      "§5.5 cost model vs. simulated timeline, DESIGN.md "
                      "§13");
    }

    const SiteCase kCases[] = {
        SiteCase::kAllGatherFree,
        SiteCase::kAllGatherContracting,
        SiteCase::kAllGatherBatch,
        SiteCase::kReduceScatter,
    };
    std::vector<std::string> site_json;
    for (SiteCase site_case : kCases) {
        auto run = RunSite(SpecFor(site_case), force);
        if (!run.ok()) {
            std::fprintf(stderr, "site %s failed: %s\n",
                         SiteCaseName(site_case),
                         run.status().ToString().c_str());
            return 1;
        }
        if (!json_only) PrintSiteRun(run.value());
        site_json.push_back(SiteRunJson(run.value()));
    }

    std::string model_json = "null";
    if (!quick) {
        const ModelConfig* model = FindModel(model_name);
        if (model == nullptr) {
            std::fprintf(stderr, "unknown model '%s'\n",
                         model_name.c_str());
            return 1;
        }
        auto analysis = AnalyzeModelOverlap(*model, CompilerOptions());
        if (!analysis.ok()) {
            std::fprintf(stderr, "model analysis failed: %s\n",
                         analysis.status().ToString().c_str());
            return 1;
        }
        model_json = analysis->ToJson();
        if (!json_only) {
            std::printf("\nmodel %s: overlap %.3f ms vs baseline %.3f ms "
                        "(%.3fx), layer comm %.1f%% hidden\n",
                        model->name.c_str(),
                        analysis->overlap.step_seconds * 1e3,
                        analysis->baseline.step_seconds * 1e3,
                        analysis->report.actual_speedup,
                        analysis->report.hidden_fraction * 100.0);
        }
        if (!trace_path.empty()) {
            std::ofstream trace_file(trace_path);
            trace_file << analysis->trace_json;
            if (!json_only) {
                std::printf("unified Chrome trace written to %s\n",
                            trace_path.c_str());
            }
        }
    }

    std::string doc =
        StrCat("{\"sites\":[", StrJoin(site_json, ","),
               "],\"model\":", model_json, "}\n");
    if (json_only) std::printf("%s", doc.c_str());
    std::ofstream out(out_path);
    out << doc;
    if (!json_only) {
        std::printf("\nreport written to %s\n", out_path.c_str());
    }
    return 0;
}
