/**
 * @file
 * Ablation of the §5.5 gating: decomposing *every* matched site versus
 * letting the cost model decline the unprofitable ones. On narrow
 * workloads (small per-partition einsums), the decomposed ring — which
 * only uses half the interconnect bandwidth — is slower than the
 * original collective, so forcing the rewrite hurts; the gating keeps
 * the original operations instead.
 */
#include <cstdio>

#include "bench_util.h"

using namespace overlap;

int
main()
{
    bench::Banner("Cost-model gating ablation (forced vs automatic)",
                  "Section 5.5 of the paper");
    std::printf("%-12s  %10s %10s %10s   %9s %9s\n", "model", "baseline",
                "forced", "automatic", "forced-dec", "auto-dec");
    for (const ModelConfig& config : Table1Models()) {
        auto baseline =
            SimulateModelStep(config, CompilerOptions::Baseline());
        CompilerOptions forced;
        forced.decompose.use_cost_model = false;
        auto forced_report = SimulateModelStep(config, forced);
        auto automatic = SimulateModelStep(config, CompilerOptions());
        if (!baseline.ok() || !forced_report.ok() || !automatic.ok()) {
            std::printf("%-12s FAILED\n", config.name.c_str());
            continue;
        }
        std::printf("%-12s  %10s %10s %10s   %6lld    %6lld (+%lld "
                    "declined)\n",
                    config.name.c_str(),
                    HumanTime(baseline->step_seconds).c_str(),
                    HumanTime(forced_report->step_seconds).c_str(),
                    HumanTime(automatic->step_seconds).c_str(),
                    static_cast<long long>(
                        forced_report->compile.decompose
                            .total_decomposed()),
                    static_cast<long long>(
                        automatic->compile.decompose.total_decomposed()),
                    static_cast<long long>(
                        automatic->compile.decompose
                            .rejected_by_cost_model));
    }
    std::printf(
        "\nAt Table 1 scale every matched site is profitable, so forced "
        "== automatic.\nThe gating earns its keep on narrow workloads, "
        "where per-partition einsums are\ntoo small to cover the "
        "half-bandwidth ring:\n\n");
    std::printf("%-22s  %10s %10s %10s   %9s\n", "narrow variant",
                "baseline", "forced", "automatic", "declined");
    for (const ModelConfig& base_config :
         {*FindModel("GPT_32B"), *FindModel("BigSSL_10B")}) {
        ModelConfig config = base_config;
        // Shrink the tokens per device until the ring stops paying.
        config.name += "_narrow";
        if (config.kind == ModelKind::kSpeech) {
            config.seq_len /= 8;
        } else {
            config.batch_size /= 8;
        }
        auto baseline =
            SimulateModelStep(config, CompilerOptions::Baseline());
        CompilerOptions forced;
        forced.decompose.use_cost_model = false;
        auto forced_report = SimulateModelStep(config, forced);
        auto automatic = SimulateModelStep(config, CompilerOptions());
        if (!baseline.ok() || !forced_report.ok() || !automatic.ok()) {
            std::printf("%-22s FAILED\n", config.name.c_str());
            continue;
        }
        std::printf("%-22s  %10s %10s %10s   %6lld\n", config.name.c_str(),
                    HumanTime(baseline->step_seconds).c_str(),
                    HumanTime(forced_report->step_seconds).c_str(),
                    HumanTime(automatic->step_seconds).c_str(),
                    static_cast<long long>(
                        automatic->compile.decompose
                            .rejected_by_cost_model));
    }
    std::printf(
        "\nThe rewrite is enabled per site only when comp_t + comm_t >= "
        "max(comp_t,\ncomm_t_ring) + extra_t (§5.5). The estimate is "
        "deliberately conservative (it\nassumes the prologue/epilogue "
        "permutes find no overlap), so it may decline a\nmarginally "
        "profitable site, but it protects against the real regressions "
        "that\nforcing every rewrite causes on narrow workloads.\n");
    return 0;
}
