/**
 * @file
 * Reproduces Figure 1: training step time breakdown (computation vs data
 * communication) of the six Table 1 models under the *baseline* system —
 * blocking collectives, no overlap. The paper's point: every large model
 * spends a substantial fraction of its step communicating.
 */
#include <cstdio>

#include "bench_util.h"

using namespace overlap;

int
main()
{
    bench::Banner("Training step time breakdown (baseline, no overlap)",
                  "Figure 1 and Table 1 of the paper");
    std::printf("%-12s %6s %7s %10s  %7s %7s  breakdown\n", "model",
                "chips", "mesh", "step", "compute", "comm");
    for (const ModelConfig& config : Table1Models()) {
        auto report =
            SimulateModelStep(config, CompilerOptions::Baseline());
        if (!report.ok()) {
            std::printf("%-12s FAILED: %s\n", config.name.c_str(),
                        report.status().ToString().c_str());
            continue;
        }
        double comm = report->comm_fraction;
        std::printf("%-12s %6lld %3lldx%-3lld %10s  %6.1f%% %6.1f%%  |%s|\n",
                    config.name.c_str(),
                    static_cast<long long>(config.num_chips),
                    static_cast<long long>(config.mesh_x),
                    static_cast<long long>(config.mesh_y),
                    HumanTime(report->step_seconds).c_str(),
                    (1.0 - comm) * 100.0, comm * 100.0,
                    bench::Bar(comm, 1.0).c_str());
    }
    std::printf("\nTable 1 configurations:\n");
    for (const ModelConfig& config : Table1Models()) {
        std::printf("  %s\n", config.ToString().c_str());
    }
    std::printf("\nPaper: all six models spend a substantial share of the "
                "step on communication\n(roughly 15-60%% depending on the "
                "architecture); the same shape holds above.\n");
    return 0;
}
