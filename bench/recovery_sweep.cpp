/**
 * @file
 * Elastic-recovery sweep (DESIGN.md §11): recovery latency and total run
 * overhead of a mid-run permanent chip failure, swept over checkpoint
 * intervals and failure times. Short intervals pay checkpoint traffic
 * but replay little; long intervals replay most of the work since the
 * last snapshot. Emits the sweep as JSON (--json for machine-readable
 * output only, --quick for the sanitize-suite subset, --threads N to
 * fan the independent sweep points across a worker pool — output order
 * and contents are identical at every thread count).
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "models/fault_presets.h"
#include "support/thread_pool.h"

using namespace overlap;

namespace {

struct SweepPoint {
    int64_t checkpoint_interval = 0;
    int64_t fail_step = 0;
    ElasticRunReport report;
    /// Non-empty when this point's run failed (reported in grid order).
    std::string error;
};

std::string
PointJson(const SweepPoint& point)
{
    const RecoveryStats& r = point.report.recovery;
    return StrCat(
        "    {\"checkpoint_interval\": ", point.checkpoint_interval,
        ", \"fail_step\": ", point.fail_step,
        ", \"recovered\": ", r.recovered ? "true" : "false",
        ", \"detection_s\": ", r.detection_seconds,
        ", \"restore_s\": ", r.restore_seconds,
        ", \"replan_s\": ", r.replan_seconds,
        ", \"replay_s\": ", r.replay_seconds,
        ", \"recovery_latency_s\": ", r.RecoveryLatencySeconds(),
        ", \"replayed_steps\": ", r.replayed_steps,
        ", \"checkpoint_bytes\": ", r.checkpoint_bytes,
        ", \"total_s\": ", point.report.total_seconds,
        ", \"p50_step_s\": ", point.report.steps.p50_step_seconds, "}");
}

}  // namespace

int
main(int argc, char** argv)
{
    bool json_only = false;
    bool quick = false;
    int64_t threads = DefaultThreadCount();
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json_only = true;
        if (std::strcmp(argv[i], "--quick") == 0) quick = true;
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = std::strtoll(argv[++i], nullptr, 10);
        }
    }
    if (threads < 1) threads = 1;

    const Mesh mesh(4);
    const int64_t kNumSteps = quick ? 8 : 16;
    const std::vector<int64_t> intervals =
        quick ? std::vector<int64_t>{1, 2, 4}
              : std::vector<int64_t>{1, 2, 4, 8};
    // Odd steps land between checkpoints, so longer intervals actually
    // replay work instead of resuming from a snapshot taken at the
    // failure point.
    const std::vector<int64_t> fail_steps =
        quick ? std::vector<int64_t>{kNumSteps - 1}
              : std::vector<int64_t>{3, kNumSteps / 2 + 1, kNumSteps - 3};

    ElasticProgramSpec program;
    program.logical_rows = 8;
    program.feature = 4;

    if (!json_only) {
        bench::Banner(
            StrCat("Recovery sweep on ", mesh.ToString(), ": ",
                   kNumSteps, " steps, chip 1 dies mid-run"),
            "checkpoint interval vs. replay: the elastic runtime's "
            "core trade-off");
        std::printf("%-9s %-6s  %10s %10s %10s %10s   %6s\n", "interval",
                    "fail@", "detect", "restore", "replay", "latency",
                    "replay#");
    }

    // The sweep points are independent: fan them across a pool and
    // print in grid order afterwards, so --threads never changes the
    // output.
    std::vector<std::pair<int64_t, int64_t>> grid;
    for (int64_t interval : intervals) {
        for (int64_t fail_step : fail_steps) {
            grid.emplace_back(interval, fail_step);
        }
    }
    auto run_point = [&](int64_t i) {
        SweepPoint point;
        point.checkpoint_interval = grid[static_cast<size_t>(i)].first;
        point.fail_step = grid[static_cast<size_t>(i)].second;
        ElasticRunOptions options;
        options.num_steps = kNumSteps;
        options.checkpoint_interval = point.checkpoint_interval;
        options.program = program;
        options.compiler.decompose.use_cost_model = false;
        options.compiler.fault =
            ChipDeath(/*chip=*/1, point.fail_step).spec;
        auto report = RunElasticTraining(mesh, options);
        if (!report.ok()) {
            point.error = report.status().ToString();
            return point;
        }
        point.report = std::move(report).value();
        if (!point.report.recovery.recovered) {
            point.error = "did not recover";
        }
        return point;
    };
    std::vector<SweepPoint> sweep;
    if (threads > 1) {
        ThreadPool pool(std::min<int64_t>(
            threads, static_cast<int64_t>(grid.size())));
        sweep = pool.ParallelFor(static_cast<int64_t>(grid.size()),
                                 run_point);
    } else {
        for (size_t i = 0; i < grid.size(); ++i) {
            sweep.push_back(run_point(static_cast<int64_t>(i)));
        }
    }
    for (const SweepPoint& point : sweep) {
        if (!point.error.empty()) {
            std::fprintf(stderr, "sweep point (k=%lld, t=%lld): %s\n",
                         static_cast<long long>(point.checkpoint_interval),
                         static_cast<long long>(point.fail_step),
                         point.error.c_str());
            return 1;
        }
        if (!json_only) {
            const RecoveryStats& r = point.report.recovery;
            std::printf("%-9lld %-6lld  %10s %10s %10s %10s   %6lld\n",
                        static_cast<long long>(point.checkpoint_interval),
                        static_cast<long long>(point.fail_step),
                        HumanTime(r.detection_seconds).c_str(),
                        HumanTime(r.restore_seconds).c_str(),
                        HumanTime(r.replay_seconds).c_str(),
                        HumanTime(r.RecoveryLatencySeconds()).c_str(),
                        static_cast<long long>(r.replayed_steps));
        }
    }

    if (!json_only) {
        std::printf(
            "\nReplay grows with the checkpoint interval (work since the "
            "last snapshot is\nlost); detection and restore are "
            "interval-independent. The survivor ring is\nodd, so the "
            "recompile's §5.5 gate lowers the replanned loops to "
            "unidirectional.\n\nJSON:\n");
    }
    std::printf("{\n  \"mesh\": \"%s\",\n  \"num_steps\": %lld,\n"
                "  \"sweep\": [\n",
                mesh.ToString().c_str(),
                static_cast<long long>(kNumSteps));
    for (size_t i = 0; i < sweep.size(); ++i) {
        std::printf("%s%s\n", PointJson(sweep[i]).c_str(),
                    i + 1 < sweep.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
}
