/**
 * @file
 * The §2.2 trade-off made measurable: the same two-layer MLP partitioned
 * with the 1-D strategy of Figure 2 (activations batch-sharded, weights
 * gathered on demand) versus the 2-D strategy of Figure 3 (activations
 * and weights sharded along both mesh dimensions, outputs kept fully
 * partitioned via a subgroup ReduceScatter). The 2-D strategy trades
 * extra communication for a much lower peak live memory — which is why
 * the largest models must use it — and the overlap technique then buys
 * that communication back.
 */
#include <cstdio>

#include "bench_util.h"
#include "core/overlap_compiler.h"
#include "spmd/spmd_builder.h"

using namespace overlap;

namespace {

// Weight-dominated regime: what §2.2 describes for very large models,
// where materializing whole weight matrices is what breaks the memory
// budget.
constexpr int64_t kTokens = 65536;
constexpr int64_t kModelDim = 16384;
constexpr int64_t kFfDim = 65536;

/** Figure 2: one mesh axis; batch and weights share it. */
std::unique_ptr<HloModule>
BuildOneDimensional(const Mesh& mesh)
{
    auto module = std::make_unique<HloModule>("mlp_1d");
    module->set_mesh(mesh);
    SpmdBuilder spmd(module->AddEntryComputation("main"), mesh);
    TensorSharding act = TensorSharding::OnDim(2, 0, 0);
    auto x = spmd.Parameter(0, Shape(DType::kBF16, {kTokens, kModelDim}),
                            act, "x");
    auto w1 = spmd.Parameter(1, Shape(DType::kBF16, {kModelDim, kFfDim}),
                             TensorSharding::OnDim(2, 1, 0), "w1");
    auto w2 = spmd.Parameter(2, Shape(DType::kBF16, {kFfDim, kModelDim}),
                             TensorSharding::OnDim(2, 0, 0), "w2");
    auto h = spmd.Einsum(*x, *w1, "bf,fh->bh", act);
    auto y = spmd.Einsum(*h, *w2, "bh,hf->bf", act);
    module->entry()->set_root(y->local);
    return module;
}

/** Figure 3: [M, N] torus; everything sharded along both axes. */
std::unique_ptr<HloModule>
BuildTwoDimensional(const Mesh& mesh)
{
    auto module = std::make_unique<HloModule>("mlp_2d");
    module->set_mesh(mesh);
    SpmdBuilder spmd(module->AddEntryComputation("main"), mesh);
    TensorSharding act = TensorSharding::OnDims(2, 0, 1, 1, 0);
    auto x = spmd.Parameter(0, Shape(DType::kBF16, {kTokens, kModelDim}),
                            act, "x");
    auto w1 = spmd.Parameter(1, Shape(DType::kBF16, {kModelDim, kFfDim}),
                             TensorSharding::OnDims(2, 0, 1, 1, 0), "w1");
    auto w2 = spmd.Parameter(2, Shape(DType::kBF16, {kFfDim, kModelDim}),
                             TensorSharding::OnDims(2, 0, 0, 1, 1), "w2");
    auto h = spmd.Einsum(*x, *w1, "bf,fh->bh",
                         TensorSharding::OnDims(2, 0, 1, 1, 0));
    auto y = spmd.Einsum(*h, *w2, "bh,hf->bf", act);
    module->entry()->set_root(y->local);
    return module;
}

void
Report(const char* label, std::unique_ptr<HloModule> module,
       const Mesh& mesh, bool overlapped)
{
    CompilerOptions options =
        overlapped ? CompilerOptions() : CompilerOptions::Baseline();
    OverlapCompiler compiler(options);
    auto compiled = compiler.Compile(module.get());
    if (!compiled.ok()) {
        std::printf("%s: compile failed %s\n", label,
                    compiled.status().ToString().c_str());
        return;
    }
    PodSimulator sim(mesh, options.hardware);
    auto result = sim.Run(*module);
    if (!result.ok()) return;
    std::printf("%-34s %10s   %9s   %10s\n", label,
                HumanTime(result->step_seconds).c_str(),
                HumanBytes(static_cast<double>(result->peak_memory_bytes))
                    .c_str(),
                HumanTime(result->exposed_comm_seconds).c_str());
}

}  // namespace

int
main()
{
    bench::Banner(
        "Partitioning strategies: 1-D (Figure 2) vs 2-D (Figure 3)",
        "Section 2.2 of the paper");
    std::printf("two-layer MLP, 64K tokens, d_model=16384, d_ff=65536, 64 "
                "chips\n\n");
    std::printf("%-34s %10s   %9s   %10s\n", "strategy", "step",
                "peak mem", "exposed comm");
    Mesh ring(64);
    Mesh torus(8, 8);
    Report("1-D, baseline", BuildOneDimensional(ring), ring, false);
    Report("1-D, overlapped", BuildOneDimensional(ring), ring, true);
    Report("2-D, baseline", BuildTwoDimensional(torus), torus, false);
    Report("2-D, overlapped", BuildTwoDimensional(torus), torus, true);
    std::printf(
        "\n§2.2's point: the 1-D strategy must materialize whole weight "
        "matrices on\nevery device (high peak memory), while the 2-D "
        "strategy keeps long-lived\ntensors fully partitioned at the "
        "price of more collectives — which the\noverlap technique then "
        "hides.\n");
    return 0;
}
