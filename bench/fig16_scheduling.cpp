/**
 * @file
 * Reproduces Figure 16: bottom-up (Algorithm 2) vs top-down scheduling
 * of the asynchronous CollectivePermutes. The paper reports the
 * bottom-up approach ~5% faster on average, and adopts it.
 */
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace overlap;

int
main()
{
    bench::Banner("Scheduling approaches: bottom-up vs top-down",
                  "Figure 16 of the paper");
    std::printf("%-9s  %12s %12s  %s\n", "model", "top-down",
                "bottom-up", "bottom-up advantage");
    double product = 1.0;
    int count = 0;
    for (const ModelConfig& config : Table2GptModels()) {
        CompilerOptions top_down;
        top_down.scheduler = SchedulerKind::kTopDown;
        auto td = SimulateModelStep(config, top_down);
        auto bu = SimulateModelStep(config, CompilerOptions());
        if (!td.ok() || !bu.ok()) {
            std::printf("%-9s FAILED\n", config.name.c_str());
            continue;
        }
        double advantage = td->step_seconds / bu->step_seconds;
        std::printf("%-9s  %11.3fx %12s  %+5.1f%%\n", config.name.c_str(),
                    advantage, "1.000x", (advantage - 1.0) * 100.0);
        product *= advantage;
        ++count;
    }
    if (count > 0) {
        std::printf("\naverage bottom-up advantage: %+.1f%%\n",
                    (std::pow(product, 1.0 / count) - 1.0) * 100.0);
    }
    std::printf("\nPaper: the bottom-up scheduler is ~5%% faster on "
                "average and is the one the\nfinal system uses.\n");
    return 0;
}
