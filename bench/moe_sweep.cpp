/**
 * @file
 * MoE AllToAll overlap sweep (DESIGN.md §18): what the two §18
 * treatments of the expert dispatch/combine exchange buy over the
 * blocking AllToAll, across pod sizes and expert counts. Three arms
 * per point, all with the rest of the overlap pipeline (AG/RS
 * decomposition, fusion, bottom-up scheduling) identical so the delta
 * is the A2A treatment alone:
 *
 *  - blocking:   every AllToAll stays one synchronous collective
 *                (DecomposeOptions::all_to_all = false) — GLaM's
 *                exposed-exchange regime from §6.1.
 *  - decomposed: the §5.5-gated ring decomposition splits each
 *                gate-profitable AllToAll into per-peer chunk permutes
 *                interleaved with the expert einsum's partials.
 *  - pipelined:  the token stream is split into micro-batches
 *                (ModelConfig::moe_micro_batches), each with its own
 *                dispatch -> expert -> combine chain, and the blocking
 *                AllToAlls become AllToAllStart/Done pairs
 *                (CompilerOptions::async_all_to_all) so micro-batch
 *                k's exchange hides behind k±1's expert compute.
 *
 * The sweep fails (exit 1) unless at least one point simulates the
 * decomposed arm faster than blocking AND at least one point simulates
 * the pipelined arm faster than blocking — the §18 acceptance gate.
 * Emits JSON (--json for machine-readable output only, --quick for the
 * sanitize-suite subset, --out FILE to also write the JSON to FILE).
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace overlap;

namespace {

/** One (pod size, expert count) grid point: a scaled-down GLaM layer.
 * The expert axis is mesh y (the AllToAll ring); mesh x carries the
 * feature sharding. ff_dim keeps the per-device expert matmul wide
 * enough (ff_dim / mesh_x = 8192) that the partial einsums can hide
 * the ring's chunk permutes — the §18 win condition. */
ModelConfig
MoeModel(int64_t mesh_y, int64_t experts, int64_t micro_batches)
{
    ModelConfig config;
    config.name = StrCat("moe_", 4 * mesh_y, "chip_", experts, "e");
    config.kind = ModelKind::kMoe;
    config.num_layers = 24;
    config.model_dim = 4096;
    config.ff_dim = 32768;
    config.batch_size = 16;
    config.seq_len = 1024;
    config.mesh_x = 4;
    config.mesh_y = mesh_y;
    config.num_chips = config.mesh_x * config.mesh_y;
    config.num_experts = experts;
    config.moe_micro_batches = micro_batches;
    return config;
}

struct MoePoint {
    int64_t chips = 0;
    int64_t mesh_y = 0;
    int64_t experts = 0;
    int64_t micro_batches = 0;
    double blocking_seconds = 0.0;
    double decomposed_seconds = 0.0;
    double pipelined_seconds = 0.0;
    /// Ring-decomposed A2A loops the gate accepted (decomposed arm).
    int64_t ring_sites = 0;
    /// A2A sites the gate judged and declined (decomposed arm).
    int64_t rejected_sites = 0;
    /// Blocking AllToAlls split into Start/Done pairs (pipelined arm).
    int64_t async_pairs = 0;
    std::string error;

    double decomposed_speedup() const
    {
        return blocking_seconds / decomposed_seconds;
    }
    double pipelined_speedup() const
    {
        return blocking_seconds / pipelined_seconds;
    }
};

std::string
PointJson(const MoePoint& p)
{
    if (!p.error.empty()) {
        return StrCat("    {\"chips\": ", p.chips,
                      ", \"error\": \"", p.error, "\"}");
    }
    return StrCat(
        "    {\"chips\": ", p.chips, ", \"mesh\": \"4x", p.mesh_y,
        "\", \"experts\": ", p.experts,
        ", \"micro_batches\": ", p.micro_batches,
        ", \"blocking_s\": ", p.blocking_seconds,
        ", \"decomposed_s\": ", p.decomposed_seconds,
        ", \"pipelined_s\": ", p.pipelined_seconds,
        ", \"decomposed_speedup\": ", p.decomposed_speedup(),
        ", \"pipelined_speedup\": ", p.pipelined_speedup(),
        ", \"ring_sites\": ", p.ring_sites,
        ", \"rejected_sites\": ", p.rejected_sites,
        ", \"async_pairs\": ", p.async_pairs, "}");
}

StatusOr<MoePoint>
RunPoint(int64_t mesh_y, int64_t experts, int64_t micro_batches)
{
    MoePoint point;
    point.mesh_y = mesh_y;
    point.experts = experts;
    point.micro_batches = micro_batches;

    // Blocking exchange: full overlap pipeline, A2A left synchronous.
    ModelConfig config = MoeModel(mesh_y, experts, /*micro_batches=*/1);
    point.chips = config.num_chips;
    CompilerOptions blocking_options;
    blocking_options.decompose.all_to_all = false;
    auto blocking = SimulateModelStep(config, blocking_options);
    if (!blocking.ok()) return blocking.status();
    point.blocking_seconds = blocking->step_seconds;

    // Ring decomposition, §5.5 gate deciding per site.
    auto decomposed = SimulateModelStep(config, CompilerOptions());
    if (!decomposed.ok()) return decomposed.status();
    point.decomposed_seconds = decomposed->step_seconds;
    point.ring_sites = decomposed->compile.decompose.all_to_all_sites;
    for (const SiteDecision& d :
         decomposed->compile.decompose.decisions) {
        if (d.loop_shape.structure == LoopStructure::kAllToAllDispatch ||
            d.loop_shape.structure == LoopStructure::kAllToAllCombine) {
            if (!d.decomposed) ++point.rejected_sites;
        }
    }

    // Micro-batch pipelining with async Start/Done exchanges.
    ModelConfig pipelined_config =
        MoeModel(mesh_y, experts, micro_batches);
    CompilerOptions pipelined_options;
    pipelined_options.decompose.all_to_all = false;
    pipelined_options.async_all_to_all = true;
    auto pipelined =
        SimulateModelStep(pipelined_config, pipelined_options);
    if (!pipelined.ok()) return pipelined.status();
    point.pipelined_seconds = pipelined->step_seconds;
    point.async_pairs = pipelined->compile.async_all_to_alls;
    return point;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool json_only = false;
    bool quick = false;
    std::string out_file;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json_only = true;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_file = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }

    std::vector<int64_t> rings = quick ? std::vector<int64_t>{4, 8}
                                       : std::vector<int64_t>{4, 8, 16};
    std::vector<int64_t> expert_counts =
        quick ? std::vector<int64_t>{16} : std::vector<int64_t>{16, 64};
    const int64_t micro_batches = 4;

    if (!json_only) {
        bench::Banner("MoE AllToAll overlap: blocking vs ring-decomposed "
                      "vs micro-batch pipelined",
                      "DESIGN.md §18; the GLaM discussion of §6.1");
        std::printf("%6s %6s %8s  %10s %10s %10s  %8s %8s  %5s %5s\n",
                    "chips", "mesh", "experts", "blocking", "decomp",
                    "pipeline", "dec-spd", "pip-spd", "rings", "async");
    }

    std::vector<MoePoint> points;
    bool harness_error = false;
    for (int64_t ring : rings) {
        for (int64_t experts : expert_counts) {
            auto point = RunPoint(ring, experts, micro_batches);
            if (!point.ok()) {
                MoePoint failed;
                failed.chips = 4 * ring;
                failed.error = point.status().message();
                points.push_back(failed);
                harness_error = true;
                std::fprintf(stderr, "FAIL %lldx: %s\n",
                             static_cast<long long>(ring),
                             point.status().ToString().c_str());
                continue;
            }
            points.push_back(*point);
            if (!json_only) {
                std::printf(
                    "%6lld   4x%-3lld %8lld  %10s %10s %10s  %7.3fx "
                    "%7.3fx  %5lld %5lld\n",
                    static_cast<long long>(point->chips),
                    static_cast<long long>(point->mesh_y),
                    static_cast<long long>(point->experts),
                    HumanTime(point->blocking_seconds).c_str(),
                    HumanTime(point->decomposed_seconds).c_str(),
                    HumanTime(point->pipelined_seconds).c_str(),
                    point->decomposed_speedup(),
                    point->pipelined_speedup(),
                    static_cast<long long>(point->ring_sites),
                    static_cast<long long>(point->async_pairs));
            }
        }
    }

    // §18 acceptance: each treatment must beat the blocking exchange
    // somewhere on the grid, and the decomposed arm must actually have
    // emitted ring loops (a gate that rejects everything would "pass"
    // trivially through simulation noise).
    bool decomposed_win = false;
    bool pipelined_win = false;
    bool any_ring_sites = false;
    for (const MoePoint& p : points) {
        if (!p.error.empty()) continue;
        if (p.ring_sites > 0 &&
            p.decomposed_seconds < p.blocking_seconds) {
            decomposed_win = true;
        }
        if (p.async_pairs > 0 &&
            p.pipelined_seconds < p.blocking_seconds) {
            pipelined_win = true;
        }
        if (p.ring_sites > 0) any_ring_sites = true;
    }

    std::vector<std::string> rows;
    rows.reserve(points.size());
    for (const MoePoint& p : points) rows.push_back(PointJson(p));
    std::string json = StrCat(
        "{\n  \"micro_batches\": ", micro_batches,
        ",\n  \"decomposed_win\": ", decomposed_win ? "true" : "false",
        ",\n  \"pipelined_win\": ", pipelined_win ? "true" : "false",
        ",\n  \"points\": [\n", StrJoin(rows, ",\n"), "\n  ]\n}\n");
    std::printf("%s", json.c_str());
    if (!out_file.empty()) {
        std::ofstream out(out_file);
        out << json;
    }

    if (harness_error) return 1;
    if (!any_ring_sites) {
        std::fprintf(stderr,
                     "FAIL: the gate accepted no A2A ring site\n");
        return 1;
    }
    if (!decomposed_win || !pipelined_win) {
        std::fprintf(stderr,
                     "FAIL: no grid point beat the blocking exchange "
                     "(decomposed_win=%d pipelined_win=%d)\n",
                     decomposed_win, pipelined_win);
        return 1;
    }
    return 0;
}
