/**
 * @file
 * Resilience sweep: step-time distribution (p50/p99 over seeded trials)
 * of the decomposed-overlap compiler versus the blocking baseline as one
 * ring link degrades from healthy to nearly dead. Shows the
 * variance-aware §5.5 gate flipping sites back to blocking collectives
 * once the degraded ring no longer wins, and emits the sweep as JSON
 * (pass --json for machine-readable output only).
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "models/fault_presets.h"

using namespace overlap;

namespace {

struct SweepPoint {
    double bandwidth_factor = 1.0;
    StepTrialReport overlapped;
    StepTrialReport baseline;
};

std::string
PointJson(const SweepPoint& point)
{
    const DecomposeStats& stats = point.overlapped.compile.decompose;
    return StrCat(
        "    {\"link_bandwidth_factor\": ", point.bandwidth_factor,
        ", \"overlap_p50_s\": ", point.overlapped.p50_step_seconds,
        ", \"overlap_p99_s\": ", point.overlapped.p99_step_seconds,
        ", \"baseline_p50_s\": ", point.baseline.p50_step_seconds,
        ", \"baseline_p99_s\": ", point.baseline.p99_step_seconds,
        ", \"decomposed_sites\": ", stats.total_decomposed(),
        ", \"fault_fallbacks\": ", stats.fault_fallbacks,
        ", \"fault_lowered\": ", stats.fault_lowered,
        ", \"retries\": ", point.overlapped.trials.total_retries, "}");
}

}  // namespace

int
main(int argc, char** argv)
{
    bool json_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json_only = true;
    }

    const ModelConfig config = Table2GptModels()[0];
    const int64_t kTrials = 16;
    const std::vector<double> severities = {1.0,  0.8, 0.6, 0.4,
                                            0.25, 0.1, 0.05};

    if (!json_only) {
        bench::Banner(
            StrCat("Fault sweep on ", config.name,
                   ": single degraded ring link, ", kTrials,
                   " trials/point"),
            "the robustness analysis the paper's §5.5 gate motivates");
        std::printf("%-8s  %10s %10s   %10s %10s   %5s %5s %5s\n",
                    "link-bw", "ovl-p50", "ovl-p99", "base-p50",
                    "base-p99", "sites", "fall", "lower");
    }

    std::vector<SweepPoint> sweep;
    for (double severity : severities) {
        SweepPoint point;
        point.bandwidth_factor = severity;

        FaultSpec spec;
        if (severity < 1.0) {
            spec = SingleDegradedLink(config.mesh(), /*axis=*/0, severity)
                       .spec;
        }
        // Mild per-trial noise so the percentiles are a distribution,
        // not a point mass.
        spec.seed = 13;
        spec.link_jitter = 0.02;
        spec.compute_jitter = 0.01;

        CompilerOptions overlapped;
        overlapped.fault = spec;
        auto overlap_report =
            SimulateModelStepTrials(config, overlapped, kTrials);

        CompilerOptions baseline = CompilerOptions::Baseline();
        baseline.fault = spec;
        auto baseline_report =
            SimulateModelStepTrials(config, baseline, kTrials);

        if (!overlap_report.ok() || !baseline_report.ok()) {
            std::fprintf(stderr, "sweep point %.2f FAILED\n", severity);
            return 1;
        }
        point.overlapped = std::move(overlap_report).value();
        point.baseline = std::move(baseline_report).value();

        if (!json_only) {
            const DecomposeStats& stats =
                point.overlapped.compile.decompose;
            std::printf(
                "%-8.2f  %10s %10s   %10s %10s   %5lld %5lld %5lld\n",
                severity,
                HumanTime(point.overlapped.p50_step_seconds).c_str(),
                HumanTime(point.overlapped.p99_step_seconds).c_str(),
                HumanTime(point.baseline.p50_step_seconds).c_str(),
                HumanTime(point.baseline.p99_step_seconds).c_str(),
                static_cast<long long>(stats.total_decomposed()),
                static_cast<long long>(stats.fault_fallbacks),
                static_cast<long long>(stats.fault_lowered));
        }
        sweep.push_back(std::move(point));
    }

    if (!json_only) {
        std::printf(
            "\nAs the link degrades, the gate first lowers sites to the "
            "healthy ring\ndirection, then falls back to blocking "
            "collectives entirely; the baseline's\nstep time is flat "
            "because the runtime's collectives route around the link."
            "\n\nJSON:\n");
    }
    std::printf("{\n  \"model\": \"%s\",\n  \"trials\": %lld,\n"
                "  \"sweep\": [\n",
                config.name.c_str(), static_cast<long long>(kTrials));
    for (size_t i = 0; i < sweep.size(); ++i) {
        std::printf("%s%s\n", PointJson(sweep[i]).c_str(),
                    i + 1 < sweep.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
}
