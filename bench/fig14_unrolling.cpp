/**
 * @file
 * Reproduces Figure 14: the loop-unrolling ablation on the Table 2 GPT
 * family. Without unrolling the decomposed loops carry the loop-carried
 * aliasing Copies and the Einsum-ReduceScatter case collapses to a
 * single accumulation chain whose fused accumulation blocks the overlap
 * (§5.4.1); y-axis is step time normalized to the fully-optimized run.
 */
#include <cstdio>

#include "bench_util.h"

using namespace overlap;

int
main()
{
    bench::Banner("Loop-unrolling ablation (normalized step time)",
                  "Figure 14 of the paper");
    std::printf("%-9s  %12s %12s  %s\n", "model", "no-unroll",
                "with-unroll", "unroll benefit");
    for (const ModelConfig& config : Table2GptModels()) {
        CompilerOptions no_unroll;
        no_unroll.decompose.unroll = false;
        auto without = SimulateModelStep(config, no_unroll);
        auto with = SimulateModelStep(config, CompilerOptions());
        if (!without.ok() || !with.ok()) {
            std::printf("%-9s FAILED\n", config.name.c_str());
            continue;
        }
        double normalized = without->step_seconds / with->step_seconds;
        std::printf("%-9s  %11.3fx %12s  %+5.1f%%  |%s|\n",
                    config.name.c_str(), normalized, "1.000x",
                    (normalized - 1.0) * 100.0,
                    bench::Bar(normalized - 1.0, 0.5, 30).c_str());
    }
    std::printf("\nPaper: unrolling helps every size by a similar margin "
                "(step time without it\nis several percent higher across "
                "the family).\n");
    return 0;
}
