/**
 * @file
 * google-benchmark microbenchmarks of the compiler passes themselves:
 * decomposition, async conversion, fusion and the two schedulers. These
 * measure *compile time* of the technique (the paper's optimization runs
 * automatically during compilation), not simulated device time.
 */
#include <benchmark/benchmark.h>

#include "core/overlap_compiler.h"
#include "hlo/builder.h"
#include "models/step_builder.h"
#include "passes/async.h"
#include "passes/decompose.h"
#include "passes/fusion.h"
#include "passes/schedule.h"

namespace overlap {
namespace {

std::unique_ptr<HloModule>
BuildAgEinsum(int64_t n)
{
    auto module = std::make_unique<HloModule>("m");
    Mesh mesh(n);
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {8192 / n, 4096}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {4096, 8192}));
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(ag, w, "bf,fh->bh"));
    return module;
}

void
BM_DecomposeLoop(benchmark::State& state)
{
    int64_t n = state.range(0);
    HardwareSpec spec;
    CostModel cost(spec);
    DecomposeOptions options;
    options.use_cost_model = false;
    for (auto _ : state) {
        auto module = BuildAgEinsum(n);
        CollectiveEinsumDecomposer decomposer(Mesh(n), &cost, options);
        auto stats = decomposer.Run(module->entry());
        benchmark::DoNotOptimize(stats);
    }
    state.SetLabel("partitions=" + std::to_string(n));
}
BENCHMARK(BM_DecomposeLoop)->Arg(4)->Arg(16)->Arg(64);

void
BM_FullPipelineOnLayerStep(benchmark::State& state)
{
    const ModelConfig* config = FindModel(
        state.range(0) == 0 ? "GPT_32B" : "GPT_1T");
    CompilerOptions options;
    for (auto _ : state) {
        auto module = BuildLayerStepModule(*config);
        OverlapCompiler compiler(options);
        auto report = compiler.Compile(module->get());
        benchmark::DoNotOptimize(report);
    }
    state.SetLabel(config->name);
}
BENCHMARK(BM_FullPipelineOnLayerStep)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_BottomUpScheduler(benchmark::State& state)
{
    int64_t n = state.range(0);
    HardwareSpec spec;
    CostModel cost(spec);
    auto module = BuildAgEinsum(n);
    DecomposeOptions options;
    options.use_cost_model = false;
    CollectiveEinsumDecomposer decomposer(Mesh(n), &cost, options);
    (void)decomposer.Run(module->entry());
    (void)CreateAsyncCollectivePermutes(module->entry());
    for (auto _ : state) {
        auto status = ScheduleComputation(module->entry(), cost,
                                          SchedulerKind::kBottomUp);
        benchmark::DoNotOptimize(status);
    }
    state.SetLabel("partitions=" + std::to_string(n));
}
BENCHMARK(BM_BottomUpScheduler)->Arg(8)->Arg(32);

void
BM_TopDownScheduler(benchmark::State& state)
{
    int64_t n = state.range(0);
    HardwareSpec spec;
    CostModel cost(spec);
    auto module = BuildAgEinsum(n);
    DecomposeOptions options;
    options.use_cost_model = false;
    CollectiveEinsumDecomposer decomposer(Mesh(n), &cost, options);
    (void)decomposer.Run(module->entry());
    (void)CreateAsyncCollectivePermutes(module->entry());
    for (auto _ : state) {
        auto status = ScheduleComputation(module->entry(), cost,
                                          SchedulerKind::kTopDown);
        benchmark::DoNotOptimize(status);
    }
    state.SetLabel("partitions=" + std::to_string(n));
}
BENCHMARK(BM_TopDownScheduler)->Arg(8)->Arg(32);

}  // namespace
}  // namespace overlap

BENCHMARK_MAIN();
