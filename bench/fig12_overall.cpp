/**
 * @file
 * Reproduces Figure 12: achieved throughput of the six Table 1 models as
 * a fraction of peak FLOPS (MFU), baseline vs overlapped, plus the
 * speedup the decomposition technique delivers.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace overlap;

int
main()
{
    bench::Banner(
        "Overall performance: baseline vs overlapped (peak-FLOPS fraction)",
        "Figure 12 of the paper");
    std::printf("%-12s  %8s %8s  %8s %8s  %7s\n", "model", "base-MFU",
                "over-MFU", "base-comm", "over-comm", "speedup");
    double speedup_product = 1.0;
    double best_speedup = 0.0;
    int count = 0;
    for (const ModelConfig& config : Table1Models()) {
        auto row = bench::CompareModel(config);
        if (!row.ok()) {
            std::printf("%-12s FAILED: %s\n", config.name.c_str(),
                        row.status().ToString().c_str());
            continue;
        }
        std::printf("%-12s  %7.1f%% %7.1f%%  %7.1f%% %8.1f%%  %6.2fx\n",
                    config.name.c_str(), row->baseline.mfu * 100.0,
                    row->overlapped.mfu * 100.0,
                    row->baseline.comm_fraction * 100.0,
                    row->overlapped.comm_fraction * 100.0,
                    row->speedup());
        speedup_product *= row->speedup();
        best_speedup = std::max(best_speedup, row->speedup());
        ++count;
    }
    if (count > 0) {
        std::printf("\ngeometric-mean speedup: %.2fx   best: %.2fx\n",
                    std::pow(speedup_product, 1.0 / count), best_speedup);
    }
    std::printf(
        "\nPaper: 1.14-1.38x speedups (avg ~1.2x); the dense models reach "
        ">60%% MFU\n(72%% peak on Meena_500B); T5_300B is the lowest dense "
        "model because of its\nbackward AllToAlls; GLaM_1T (MoE) and "
        "BigSSL_10B (1-D partitioning) sit near 40%%.\n");
    return 0;
}
