/**
 * @file
 * Tracked performance baseline for the execution stack (DESIGN.md §12):
 *
 *   perf_baseline [--threads N] [--quick] [--out FILE] [--json]
 *
 * Measures, on this machine:
 *   - SpmdEvaluator throughput (cases/sec) on a decomposed-loop module,
 *     serial lock-step vs. concurrent per-device threads, with a
 *     bit-identical cross-check of the two modes' outputs;
 *   - simulator throughput (SimulateModelStep steps/sec);
 *   - wall time of a 64-case difftest slice at --threads 1 vs. the
 *     requested thread count, with a byte-identical summary check;
 *   - tensor heap-allocation counts for the same evaluation with the
 *     BufferPool disabled vs. enabled (the memory-reuse win);
 *   - channel wait/leader time of one concurrent evaluation from the
 *     DESIGN.md §13 metrics (the diagnosis for concurrent speedups < 1
 *     on hosts with fewer cores than devices);
 *   - a per-phase breakdown of the serial evaluation (einsum seconds,
 *     collective seconds, alloc seconds) from the evaluator's phase
 *     timers, so a regression names the layer that slowed down.
 *
 * Writes the numbers as JSON to --out (default BENCH_perf.json) and to
 * stdout. Results depend on the host; hardware_concurrency is recorded,
 * and a 1-core box marks the whole run `"degenerate": true` — its
 * parallel "speedups" measure scheduling, not parallelism, and
 * perf_baseline.sh --check refuses to gate on them.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "difftest/difftest.h"
#include "interp/evaluator.h"
#include "passes/async.h"
#include "passes/decompose.h"
#include "support/metrics.h"
#include "support/thread_pool.h"
#include "tensor/buffer_pool.h"

using namespace overlap;
using namespace overlap::difftest;

namespace {

double
Now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The decomposed-loop workload the evaluator numbers run on. */
StatusOr<SiteScenario>
BuildDecomposedScenario(bool quick)
{
    SiteSpec spec;
    spec.site_case = SiteCase::kAllGatherContracting;
    spec.mesh_dims = {4};
    spec.axis = 0;
    spec.side = 0;
    spec.shard_extent = quick ? 8 : 16;
    spec.free0 = 24;
    spec.free1 = 24;
    spec.dtype = DType::kF32;
    spec.data_seed = 42;

    auto scenario = BuildSiteScenario(spec);
    if (!scenario.ok()) return scenario.status();

    auto variant = FindVariant("bidi_unroll");
    if (!variant.ok()) return variant.status();
    DecomposeOptions options;
    options.unroll = variant->unroll;
    options.bidirectional = variant->bidirectional;
    options.force_unidirectional = variant->force_unidirectional;
    options.use_cost_model = false;
    const Mesh& mesh = *scenario->module->mesh();
    CostModel cost((HardwareSpec()));
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    HloComputation* comp = scenario->module->entry();
    auto stats = decomposer.Run(comp);
    if (!stats.ok()) return stats.status();
    if (stats->total_decomposed() != 1) {
        return Internal("perf scenario: expected 1 decomposed site");
    }
    auto converted = CreateAsyncCollectivePermutes(comp);
    if (!converted.ok()) return converted.status();
    return scenario;
}

bool
BitIdentical(const std::vector<Tensor>& a, const std::vector<Tensor>& b)
{
    if (a.size() != b.size()) return false;
    for (size_t d = 0; d < a.size(); ++d) {
        if (!(a[d].shape() == b[d].shape())) return false;
        if (Tensor::MaxAbsDiff(a[d], b[d]) != 0.0f) return false;
    }
    return true;
}

std::string
JsonBool(bool b)
{
    return b ? "true" : "false";
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    bool json_only = false;
    // Default to the cores this box actually has: the old
    // max(4, cores) floor quadruple-booked a 1-core CI box, and the
    // "parallel" difftest slice it timed there measured contention,
    // not speedup. --threads still overrides for deliberate
    // oversubscription experiments.
    int64_t threads = DefaultThreadCount();
    std::string out_file = "BENCH_perf.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--json") {
            json_only = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = std::strtoll(argv[++i], nullptr, 10);
        } else if (arg == "--out" && i + 1 < argc) {
            out_file = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            return 2;
        }
    }
    if (threads < 1) threads = 1;

    if (!json_only) {
        bench::Banner(
            StrCat("Perf baseline: evaluator / simulator / difftest "
                   "throughput, ",
                   threads, " threads"),
            "the execution-stack numbers DESIGN.md §12 tracks");
        if (threads > DefaultThreadCount()) {
            std::printf("note: %lld threads on %lld cores — parallel "
                        "timings below measure oversubscription\n",
                        static_cast<long long>(threads),
                        static_cast<long long>(DefaultThreadCount()));
        }
    }

    // ---- 1. Evaluator throughput: serial vs. concurrent devices. ----
    auto scenario = BuildDecomposedScenario(quick);
    if (!scenario.ok()) {
        std::fprintf(stderr, "scenario: %s\n",
                     scenario.status().ToString().c_str());
        return 1;
    }
    const Mesh& mesh = *scenario->module->mesh();
    const HloComputation& comp = *scenario->module->entry();
    const int64_t eval_iters = quick ? 10 : 60;

    SpmdEvaluator serial_eval(mesh);
    EvalOptions concurrent_opts;
    concurrent_opts.concurrent_devices = true;
    SpmdEvaluator concurrent_eval(mesh, concurrent_opts);

    // Warm both code paths (and the buffer pool) before timing.
    auto serial_out = serial_eval.Evaluate(comp, scenario->params);
    auto concurrent_out = concurrent_eval.Evaluate(comp, scenario->params);
    if (!serial_out.ok() || !concurrent_out.ok()) {
        std::fprintf(stderr, "evaluation failed: %s\n",
                     (serial_out.ok() ? concurrent_out.status()
                                      : serial_out.status())
                         .ToString()
                         .c_str());
        return 1;
    }
    const bool eval_bit_identical =
        BitIdentical(*serial_out, *concurrent_out);

    double t0 = Now();
    for (int64_t i = 0; i < eval_iters; ++i) {
        auto r = serial_eval.Evaluate(comp, scenario->params);
        if (!r.ok()) return 1;
    }
    const double serial_eval_s = Now() - t0;
    t0 = Now();
    for (int64_t i = 0; i < eval_iters; ++i) {
        auto r = concurrent_eval.Evaluate(comp, scenario->params);
        if (!r.ok()) return 1;
    }
    const double concurrent_eval_s = Now() - t0;
    const double serial_cps = eval_iters / serial_eval_s;
    const double concurrent_cps = eval_iters / concurrent_eval_s;

    if (!json_only) {
        std::printf("evaluator: %.1f cases/s serial, %.1f cases/s "
                    "concurrent-devices (%s)\n",
                    serial_cps, concurrent_cps,
                    eval_bit_identical ? "bit-identical"
                                       : "OUTPUTS DIFFER");
    }

    // ---- 1b. Channel diagnostics (DESIGN.md §13): where the
    // concurrent mode's time goes. On a host with fewer cores than
    // devices the wait histogram dominates the device-program time —
    // the direct evidence behind a concurrent speedup < 1 above.
    SetMetricsEnabled(true);
    MetricsRegistry::Global().ResetAll();
    {
        auto r = concurrent_eval.Evaluate(comp, scenario->params);
        if (!r.ok()) return 1;
    }
    Counter* channel_total = MetricsRegistry::Global().counter(
        "evaluator.channel_total");
    const Histogram::Snapshot channel_wait =
        MetricsRegistry::Global()
            .histogram("evaluator.channel_wait_seconds")
            ->snapshot();
    const Histogram::Snapshot channel_leader =
        MetricsRegistry::Global()
            .histogram("evaluator.channel_leader_seconds")
            ->snapshot();
    const int64_t channel_count = channel_total->value();
    SetMetricsEnabled(false);
    MetricsRegistry::Global().ResetAll();
    if (!json_only) {
        std::printf(
            "channels: %lld per evaluation; wait mean %.1fus "
            "p99 %.1fus sum %.1fms, leader mean %.1fus sum %.1fms\n",
            static_cast<long long>(channel_count),
            channel_wait.mean() * 1e6,
            channel_wait.Quantile(0.99) * 1e6,
            channel_wait.sum * 1e3, channel_leader.mean() * 1e6,
            channel_leader.sum * 1e3);
    }

    // ---- 1c. Per-phase breakdown of the serial evaluation. The phase
    // timers read the clock inside the hot path, so this runs as its
    // own pass — the throughput numbers above stay untimed.
    SetEvalPhaseTimingEnabled(true);
    SetAllocTimingEnabled(true);
    ConsumeEvalPhaseSeconds();
    ConsumeAllocSeconds();
    t0 = Now();
    for (int64_t i = 0; i < eval_iters; ++i) {
        auto r = serial_eval.Evaluate(comp, scenario->params);
        if (!r.ok()) return 1;
    }
    const double phases_wall_s = Now() - t0;
    const EvalPhaseSeconds phases = ConsumeEvalPhaseSeconds();
    const double alloc_s = ConsumeAllocSeconds();
    SetEvalPhaseTimingEnabled(false);
    SetAllocTimingEnabled(false);
    if (!json_only) {
        std::printf(
            "serial phases over %lld evaluations: einsum %.1fms, "
            "collective %.1fms, alloc %.1fms, other %.1fms "
            "(wall %.1fms)\n",
            static_cast<long long>(eval_iters), phases.einsum_seconds * 1e3,
            phases.collective_seconds * 1e3, alloc_s * 1e3,
            (phases_wall_s - phases.einsum_seconds -
             phases.collective_seconds - alloc_s) *
                1e3,
            phases_wall_s * 1e3);
    }

    // ---- 2. Allocation counts: BufferPool off vs. on. ----
    BufferPool& pool = ThreadLocalBufferPool();
    const int64_t alloc_iters = quick ? 4 : 10;
    pool.set_enabled(false);
    pool.Clear();
    int64_t before = TensorHeapAllocCount();
    for (int64_t i = 0; i < alloc_iters; ++i) {
        auto r = serial_eval.Evaluate(comp, scenario->params);
        if (!r.ok()) return 1;
    }
    const int64_t allocs_disabled = TensorHeapAllocCount() - before;
    pool.set_enabled(true);
    pool.ResetStats();
    // One warm-up pass fills the free lists; then measure steady state.
    {
        auto r = serial_eval.Evaluate(comp, scenario->params);
        if (!r.ok()) return 1;
    }
    before = TensorHeapAllocCount();
    for (int64_t i = 0; i < alloc_iters; ++i) {
        auto r = serial_eval.Evaluate(comp, scenario->params);
        if (!r.ok()) return 1;
    }
    const int64_t allocs_enabled = TensorHeapAllocCount() - before;
    const BufferPool::Stats pool_stats = pool.stats();
    const double alloc_drop =
        allocs_disabled > 0
            ? 1.0 - static_cast<double>(allocs_enabled) /
                        static_cast<double>(allocs_disabled)
            : 0.0;

    if (!json_only) {
        std::printf("allocations over %lld evaluations: %lld pool-off, "
                    "%lld pool-on (%.1f%% fewer); %s\n",
                    static_cast<long long>(alloc_iters),
                    static_cast<long long>(allocs_disabled),
                    static_cast<long long>(allocs_enabled),
                    100.0 * alloc_drop, pool_stats.ToString().c_str());
    }

    // ---- 3. Simulator throughput. ----
    const ModelConfig* model = FindModel("GPT_32B");
    if (model == nullptr) {
        std::fprintf(stderr, "model GPT_32B not found\n");
        return 1;
    }
    const int64_t sim_iters = quick ? 3 : 10;
    t0 = Now();
    for (int64_t i = 0; i < sim_iters; ++i) {
        auto report = SimulateModelStep(*model, CompilerOptions());
        if (!report.ok()) {
            std::fprintf(stderr, "simulate: %s\n",
                         report.status().ToString().c_str());
            return 1;
        }
    }
    const double sim_s = Now() - t0;
    const double sim_sps = sim_iters / sim_s;
    if (!json_only) {
        std::printf("simulator: %.1f steps/s (%s)\n", sim_sps,
                    model->name.c_str());
    }

    // ---- 4. Difftest slice: serial vs. parallel wall time. ----
    DiffTestConfig dt;
    dt.num_cases = quick ? 16 : 64;
    dt.seed = 1;
    dt.threads = 1;
    t0 = Now();
    auto serial_summary = RunDiffTest(dt);
    const double dt_serial_s = Now() - t0;
    dt.threads = threads;
    t0 = Now();
    auto parallel_summary = RunDiffTest(dt);
    const double dt_parallel_s = Now() - t0;
    if (!serial_summary.ok() || !parallel_summary.ok()) {
        std::fprintf(stderr, "difftest slice failed\n");
        return 1;
    }
    const bool dt_byte_identical =
        serial_summary->ToString() == parallel_summary->ToString() &&
        serial_summary->mismatches == parallel_summary->mismatches &&
        serial_summary->variants_run == parallel_summary->variants_run;
    const double dt_speedup = dt_serial_s / dt_parallel_s;
    if (!json_only) {
        std::printf("difftest %lld cases: %.2fs serial, %.2fs at %lld "
                    "threads (%.2fx, summaries %s)\n",
                    static_cast<long long>(dt.num_cases), dt_serial_s,
                    dt_parallel_s, static_cast<long long>(threads),
                    dt_speedup,
                    dt_byte_identical ? "byte-identical" : "DIFFER");
    }

    // ---- JSON. ----
    // A 1-core host can't run the concurrent modes in parallel: its
    // "speedups" measure context switching. Mark the whole run so
    // perf_baseline.sh --check (and readers) skip the gate.
    const bool degenerate = DefaultThreadCount() == 1;
    std::string json = StrCat(
        "{\n"
        "  \"hardware_concurrency\": ",
        DefaultThreadCount(),
        ",\n  \"threads\": ", threads,
        ",\n  \"oversubscribed\": ",
        JsonBool(threads > DefaultThreadCount()),
        ",\n  \"degenerate\": ", JsonBool(degenerate),
        ",\n  \"quick\": ", JsonBool(quick),
        ",\n  \"evaluator\": {\"iters\": ", eval_iters,
        ", \"serial_cases_per_sec\": ", serial_cps,
        ", \"concurrent_devices_cases_per_sec\": ", concurrent_cps,
        ", \"speedup\": ", concurrent_cps / serial_cps,
        ", \"bit_identical\": ", JsonBool(eval_bit_identical), "},");
    json += StrCat(
        "\n  \"channels\": {\"per_evaluation\": ", channel_count,
        ", \"wait_mean_seconds\": ", channel_wait.mean(),
        ", \"wait_p99_seconds\": ", channel_wait.Quantile(0.99),
        ", \"wait_sum_seconds\": ", channel_wait.sum,
        ", \"leader_mean_seconds\": ", channel_leader.mean(),
        ", \"leader_sum_seconds\": ", channel_leader.sum, "},");
    json += StrCat(
        "\n  \"phases\": {\"evaluations\": ", eval_iters,
        ", \"einsum_seconds\": ", phases.einsum_seconds,
        ", \"collective_seconds\": ", phases.collective_seconds,
        ", \"alloc_seconds\": ", alloc_s,
        ", \"wall_seconds\": ", phases_wall_s, "},");
    json += StrCat(
        "\n  \"allocations\": {\"evaluations\": ", alloc_iters,
        ", \"pool_disabled\": ", allocs_disabled,
        ", \"pool_enabled\": ", allocs_enabled,
        ", \"drop_ratio\": ", alloc_drop,
        ", \"pool_hits\": ", pool_stats.hits,
        ", \"pool_misses\": ", pool_stats.misses, "},");
    json += StrCat(
        "\n  \"simulator\": {\"model\": \"", model->name,
        "\", \"iters\": ", sim_iters,
        ", \"steps_per_sec\": ", sim_sps, "},");
    json += StrCat(
        "\n  \"difftest_slice\": {\"cases\": ", dt.num_cases,
        ", \"serial_seconds\": ", dt_serial_s,
        ", \"parallel_seconds\": ", dt_parallel_s,
        ", \"parallel_threads\": ", threads,
        ", \"speedup\": ", dt_speedup,
        ", \"byte_identical\": ", JsonBool(dt_byte_identical), "}\n}\n");

    std::ofstream out(out_file);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_file.c_str());
        return 1;
    }
    out << json;
    out.close();
    if (!json_only) std::printf("\nwrote %s\n", out_file.c_str());
    std::printf("%s", json.c_str());

    const bool healthy = eval_bit_identical && dt_byte_identical;
    return healthy ? 0 : 1;
}
