/**
 * @file
 * Reproduces Figure 13 (and Table 2): weak-scaling study on GPT models
 * from 32B to 1T parameters on 64 to 2048 chips. The paper reports a
 * consistent 1.1-1.4x speedup at every size.
 */
#include <cstdio>

#include "bench_util.h"

using namespace overlap;

int
main()
{
    bench::Banner("Weak scaling: GPT 32B to 1T",
                  "Figure 13 and Table 2 of the paper");
    std::printf("%-9s %6s %7s  %10s %10s  %7s  %8s\n", "model", "chips",
                "mesh", "base-step", "over-step", "speedup", "over-MFU");
    for (const ModelConfig& config : Table2GptModels()) {
        auto row = bench::CompareModel(config);
        if (!row.ok()) {
            std::printf("%-9s FAILED: %s\n", config.name.c_str(),
                        row.status().ToString().c_str());
            continue;
        }
        std::printf("%-9s %6lld %3lldx%-3lld  %10s %10s  %6.2fx  %7.1f%%\n",
                    config.name.c_str(),
                    static_cast<long long>(config.num_chips),
                    static_cast<long long>(config.mesh_x),
                    static_cast<long long>(config.mesh_y),
                    HumanTime(row->baseline.step_seconds).c_str(),
                    HumanTime(row->overlapped.step_seconds).c_str(),
                    row->speedup(), row->overlapped.mfu * 100.0);
    }
    std::printf("\nTable 2 configurations:\n");
    for (const ModelConfig& config : Table2GptModels()) {
        std::printf("  %s\n", config.ToString().c_str());
    }
    std::printf("\nPaper: the technique consistently improves every size "
                "by 1.1-1.4x.\n");
    return 0;
}
