#include <gtest/gtest.h>

#include "hlo/builder.h"
#include "hlo/module.h"
#include "hlo/verifier.h"
#include "interp/evaluator.h"
#include "passes/fusion_rewrites.h"

namespace overlap {
namespace {

int64_t
CountOps(const HloComputation& comp, HloOpcode opcode)
{
    int64_t count = 0;
    for (const HloInstruction* instr : comp.instructions()) {
        if (instr->opcode() == opcode) ++count;
    }
    return count;
}

TEST(FusionRewriteTest, ConcatBecomesMaxOfPads)
{
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* a = b.Parameter(0, Shape({2, 3}));
    auto* c = b.Parameter(1, Shape({2, 5}));
    auto* w = b.Parameter(2, Shape({8, 4}));
    auto* concat = b.Concatenate({a, c}, 1);
    auto* einsum = b.Einsum(concat, w, "bf,fh->bh");
    comp->set_root(einsum);

    // Reference value before the rewrite (includes negative inputs, which
    // is what the -inf padding must survive).
    Tensor ta = Tensor::Random(Shape({2, 3}), 5);
    Tensor tc = Tensor::Random(Shape({2, 5}), 6);
    Tensor tw = Tensor::Random(Shape({8, 4}), 7);
    auto before = EvaluateGlobal(*comp, {ta, tc, tw});
    ASSERT_TRUE(before.ok());

    auto rewritten = MakeConcatenatesFusionFriendly(comp);
    ASSERT_TRUE(rewritten.ok());
    EXPECT_EQ(rewritten.value(), 1);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kConcatenate), 0);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kPad), 2);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kMaximum), 1);
    EXPECT_TRUE(VerifyComputation(*comp).ok());

    auto after = EvaluateGlobal(*comp, {ta, tc, tw});
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE(after->AllClose(*before, 1e-4f));
}

TEST(FusionRewriteTest, RewrittenOpsJoinTheEinsumKernel)
{
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* a = b.Parameter(0, Shape({2, 3}));
    auto* c = b.Parameter(1, Shape({2, 3}));
    auto* w = b.Parameter(2, Shape({6, 4}));
    auto* concat = b.Concatenate({a, c}, 1);
    auto* einsum = b.Einsum(concat, w, "bf,fh->bh");
    comp->set_root(einsum);
    ASSERT_TRUE(MakeConcatenatesFusionFriendly(comp).ok());
    ASSERT_GE(einsum->fusion_group(), 0);
    for (const HloInstruction* instr : comp->instructions()) {
        if (instr->opcode() == HloOpcode::kPad ||
            instr->opcode() == HloOpcode::kMaximum) {
            EXPECT_EQ(instr->fusion_group(), einsum->fusion_group());
        }
    }
}

TEST(FusionRewriteTest, LeavesNonEinsumConsumersAlone)
{
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* a = b.Parameter(0, Shape({2, 3}));
    auto* c = b.Parameter(1, Shape({2, 5}));
    auto* concat = b.Concatenate({a, c}, 1);
    comp->set_root(b.Negate(concat));
    auto rewritten = MakeConcatenatesFusionFriendly(comp);
    ASSERT_TRUE(rewritten.ok());
    EXPECT_EQ(rewritten.value(), 0);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kConcatenate), 1);
}

TEST(FusionRewriteTest, LeavesThreeWayConcatsAlone)
{
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* a = b.Parameter(0, Shape({2, 2}));
    auto* w = b.Parameter(1, Shape({6, 4}));
    auto* concat = b.Concatenate({a, a, a}, 1);
    comp->set_root(b.Einsum(concat, w, "bf,fh->bh"));
    auto rewritten = MakeConcatenatesFusionFriendly(comp);
    ASSERT_TRUE(rewritten.ok());
    EXPECT_EQ(rewritten.value(), 0);
}

}  // namespace
}  // namespace overlap
