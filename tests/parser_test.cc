#include <gtest/gtest.h>

#include <random>

#include "hlo/builder.h"
#include "hlo/parser.h"
#include "hlo/verifier.h"
#include "interp/evaluator.h"
#include "passes/async.h"
#include "passes/decompose.h"

namespace overlap {
namespace {

TEST(ParserTest, OpcodeNamesRoundTrip)
{
    for (int op = 0; op <= static_cast<int>(HloOpcode::kTuple); ++op) {
        HloOpcode opcode = static_cast<HloOpcode>(op);
        auto parsed = HloOpcodeFromName(HloOpcodeName(opcode));
        ASSERT_TRUE(parsed.ok()) << HloOpcodeName(opcode);
        EXPECT_EQ(parsed.value(), opcode);
    }
    EXPECT_FALSE(HloOpcodeFromName("frobnicate").ok());
}

TEST(ParserTest, ParsesHandWrittenModule)
{
    const char* text = R"(
module tiny mesh[4]
computation main {
  %x = f32[2,4] parameter(), index=0
  %w = f32[4,8] parameter(), index=1
  %g = f32[8,4] all-gather(%x), dim=0, groups={0,1,2,3}
  ROOT %y = f32[8,8] einsum(%g, %w), spec=bf,fh->bh
}
)";
    auto module = ParseHloModule(text);
    ASSERT_TRUE(module.ok()) << module.status().ToString();
    EXPECT_EQ((*module)->name(), "tiny");
    ASSERT_TRUE((*module)->mesh().has_value());
    EXPECT_EQ((*module)->mesh()->num_devices(), 4);
    HloComputation* comp = (*module)->entry();
    EXPECT_EQ(comp->instruction_count(), 4);
    EXPECT_EQ(comp->root()->opcode(), HloOpcode::kEinsum);
    EXPECT_EQ(comp->root()->attrs().einsum_spec, "bf,fh->bh");
}

TEST(ParserTest, RoundTripsBuilderModule)
{
    HloModule module("roundtrip");
    module.set_mesh(Mesh(2, 2));
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {4, 8}), "acts");
    auto* w = b.Parameter(1, Shape(DType::kBF16, {8, 4}));
    auto* ag = b.AllGather(p, 0, Mesh(2, 2).Groups(1));
    auto* e = b.Einsum(ag, w, "bf,fh->bh");
    auto* rs = b.ReduceScatter(e, 1, Mesh(2, 2).Groups(0));
    auto* idx = b.Multiply(b.AxisIndex(0), b.ConstantIndex(2));
    auto* sliced = b.DynamicSliceOnDim(rs, 0, idx, 2);
    comp->set_root(b.Pad(sliced, {1, 0}, {0, 1}, -1.5f));

    std::string text = module.ToString();
    auto parsed = ParseHloModule(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString()
                             << "\ntext was:\n"
                             << text;
    // Printing the parsed module reproduces the text exactly.
    EXPECT_EQ((*parsed)->ToString(), text);
}

TEST(ParserTest, RoundTripPreservesSemantics)
{
    HloModule module("sem");
    module.set_mesh(Mesh(2));
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2, 2}));
    auto* c = b.Constant(Tensor(Shape({2, 2}), {1, 2, 3, 4}));
    comp->set_root(b.Einsum(b.Add(p, c), c, "mk,kn->mn"));

    auto parsed = ParseHloModule(module.ToString());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

    SpmdEvaluator eval((Mesh(2)));
    Tensor input = Tensor::Random(Shape({2, 2}), 3);
    auto original = eval.Evaluate(*comp, {{input}});
    auto reparsed = eval.Evaluate(*(*parsed)->entry(), {{input}});
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(reparsed.ok());
    for (int d = 0; d < 2; ++d) {
        EXPECT_TRUE((*reparsed)[d].AllClose((*original)[d], 1e-5f));
    }
}

TEST(ParserTest, RoundTripsDecomposedLoop)
{
    // The acid test: a full unrolled CollectiveEinsum loop with async
    // permutes, fusion groups, loop groups and index arithmetic.
    HloModule module("loop");
    Mesh mesh(4);
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {8, 16}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {16, 8}));
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(ag, w, "bf,fh->bh"));
    CostModel cost{HardwareSpec{}};
    DecomposeOptions options;
    options.use_cost_model = false;
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    ASSERT_TRUE(decomposer.Run(comp).ok());
    ASSERT_TRUE(CreateAsyncCollectivePermutes(comp).ok());

    std::string text = module.ToString();
    auto parsed = ParseHloModule(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ((*parsed)->ToString(), text);
    EXPECT_TRUE(VerifyModule(**parsed).ok());
}

TEST(ParserTest, RoundTripsDecomposedAllToAllLoop)
{
    // The §18 form: a ring-decomposed MoE dispatch whose chunk permutes
    // carry `chunk=` attributes (which peer offset each exchange
    // serves), then the async split's channel ids on top.
    HloModule module("a2a_loop");
    Mesh mesh(4);
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* tokens = b.Parameter(0, Shape(DType::kBF16, {8, 16}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {16, 8}));
    auto* a2a = b.AllToAll(tokens, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(a2a, w, "td,dh->th"));
    CostModel cost{HardwareSpec{}};
    DecomposeOptions options;
    options.use_cost_model = false;
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    auto stats = decomposer.Run(comp);
    ASSERT_TRUE(stats.ok());
    ASSERT_EQ(stats->all_to_all_sites, 1);
    ASSERT_TRUE(CreateAsyncCollectivePermutes(comp).ok());

    std::string text = module.ToString();
    EXPECT_NE(text.find("chunk="), std::string::npos) << text;
    auto parsed = ParseHloModule(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ((*parsed)->ToString(), text);
    EXPECT_TRUE(VerifyModule(**parsed).ok());
}

TEST(ParserTest, RoundTripsAsyncAllToAllPair)
{
    // The §18 micro-batch pipelined form: a blocking exchange split
    // into an AllToAllStart/Done pair sharing a channel.
    HloModule module("a2a_async");
    Mesh mesh(4);
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {8, 16}));
    auto* start = b.AllToAllStart(p, 0, mesh.Groups(0));
    start->mutable_attrs().channel_id = comp->NextChannelId();
    auto* done = b.AllToAllDone(start);
    comp->set_root(done);
    ASSERT_TRUE(VerifyModule(module).ok());

    std::string text = module.ToString();
    EXPECT_NE(text.find("all-to-all-start"), std::string::npos) << text;
    EXPECT_NE(text.find("all-to-all-done"), std::string::npos) << text;
    auto parsed = ParseHloModule(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ((*parsed)->ToString(), text);
    EXPECT_TRUE(VerifyModule(**parsed).ok());
}

TEST(ParserTest, RoundTripsChannelIds)
{
    HloModule module("chan");
    Mesh mesh(4);
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2, 4}));
    auto* start = b.CollectivePermuteStart(p, RingShiftPairs(mesh, 0, 1));
    auto* done = b.CollectivePermuteDone(start);
    start->mutable_attrs().channel_id = 7;
    done->mutable_attrs().channel_id = 7;
    auto* ag = b.AllGather(done, 0, mesh.Groups(0));
    ag->mutable_attrs().channel_id = 8;
    comp->set_root(ag);

    std::string text = module.ToString();
    EXPECT_NE(text.find("channel=7"), std::string::npos);
    EXPECT_NE(text.find("channel=8"), std::string::npos);
    auto parsed = ParseHloModule(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ((*parsed)->ToString(), text);
}

TEST(ParserTest, VerifierRejectsMismatchedStartDoneChannels)
{
    HloModule module("chan");
    Mesh mesh(2);
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2}));
    auto* start = b.CollectivePermuteStart(p, {{0, 1}, {1, 0}});
    auto* done = b.CollectivePermuteDone(start);
    start->mutable_attrs().channel_id = 3;
    done->mutable_attrs().channel_id = 4;
    comp->set_root(done);
    EXPECT_FALSE(VerifyModule(module).ok());
    done->mutable_attrs().channel_id = 3;
    EXPECT_TRUE(VerifyModule(module).ok());
}

TEST(ParserTest, FuzzRoundTripsCollectiveAttributes)
{
    // Randomized modules exercising every attribute the difftest repro
    // files can emit — replica groups, source-target pairs, channel
    // ids, dims — must print/parse/print to the identical text.
    std::mt19937_64 rng(2024);
    for (int trial = 0; trial < 50; ++trial) {
        int64_t n = 2 + static_cast<int64_t>(rng() % 4);  // ring 2-5
        Mesh mesh = rng() % 2 == 0 ? Mesh(n) : Mesh(2, n);
        int64_t axis = mesh.num_axes() - 1;
        HloModule module("fuzz");
        module.set_mesh(mesh);
        HloComputation* comp = module.AddEntryComputation("main");
        HloBuilder b(comp);
        auto* p = b.Parameter(0, Shape({2, n}));
        HloInstruction* value = p;
        int64_t ops = 1 + static_cast<int64_t>(rng() % 4);
        for (int64_t i = 0; i < ops; ++i) {
            switch (rng() % 8) {
              case 0: {
                  auto* ag = b.AllGather(value, 0, mesh.Groups(axis));
                  if (rng() % 2 == 0) {
                      ag->mutable_attrs().channel_id =
                          static_cast<int64_t>(rng() % 100);
                  }
                  // Keep shapes stable: scatter straight back.
                  value = b.ReduceScatter(ag, 0, mesh.Groups(axis));
                  break;
              }
              case 1: {
                  int64_t step = 1 + static_cast<int64_t>(rng() % (n - 1));
                  value = b.CollectivePermute(
                      value, RingShiftPairs(mesh, axis, step));
                  if (rng() % 2 == 0) {
                      value->mutable_attrs().channel_id =
                          static_cast<int64_t>(rng() % 100);
                  }
                  break;
              }
              case 2: {
                  int64_t step = 1 + static_cast<int64_t>(rng() % (n - 1));
                  auto* start = b.CollectivePermuteStart(
                      value, RingShiftPairs(mesh, axis, step));
                  auto* done = b.CollectivePermuteDone(start);
                  int64_t channel = static_cast<int64_t>(rng() % 100);
                  start->mutable_attrs().channel_id = channel;
                  done->mutable_attrs().channel_id = channel;
                  value = done;
                  break;
              }
              case 3: {
                  auto* ar = b.AllReduce(value, mesh.Groups(axis));
                  if (rng() % 2 == 0) {
                      ar->mutable_attrs().channel_id =
                          static_cast<int64_t>(rng() % 100);
                  }
                  value = ar;
                  break;
              }
              case 4: {
                  // Blocking MoE exchange (§18); dim 1 has extent n, so
                  // the per-peer chunks always split evenly.
                  auto* a2a = b.AllToAll(value, 1, mesh.Groups(axis));
                  if (rng() % 2 == 0) {
                      a2a->mutable_attrs().channel_id =
                          static_cast<int64_t>(rng() % 100);
                  }
                  value = a2a;
                  break;
              }
              case 5: {
                  auto* start = b.AllToAllStart(value, 1,
                                                mesh.Groups(axis));
                  auto* done = b.AllToAllDone(start);
                  int64_t channel = static_cast<int64_t>(rng() % 100);
                  start->mutable_attrs().channel_id = channel;
                  done->mutable_attrs().channel_id = channel;
                  value = done;
                  break;
              }
              case 6: {
                  // A §18 ring-loop chunk permute: step-k shift tagged
                  // with the peer offset it serves.
                  int64_t k = 1 + static_cast<int64_t>(rng() % (n - 1));
                  value = b.CollectivePermute(
                      value, RingShiftPairs(mesh, axis, k));
                  value->mutable_attrs().a2a_chunk = k;
                  break;
              }
              default:
                  value = b.Negate(value);
                  break;
            }
        }
        comp->set_root(value);
        ASSERT_TRUE(VerifyModule(module).ok()) << module.ToString();

        std::string text = module.ToString();
        auto parsed = ParseHloModule(text);
        ASSERT_TRUE(parsed.ok())
            << parsed.status().ToString() << "\ntext was:\n" << text;
        EXPECT_EQ((*parsed)->ToString(), text) << "trial " << trial;
        // Channel bookkeeping survives the trip.
        EXPECT_EQ((*parsed)->entry()->NextChannelId(),
                  comp->NextChannelId());
    }
}

TEST(ParserTest, RejectsMalformedInput)
{
    EXPECT_FALSE(ParseHloModule("nonsense").ok());
    EXPECT_FALSE(ParseHloModule("module m\ncomputation c {\n").ok());
    EXPECT_FALSE(ParseHloModule("module m\ncomputation c {\n"
                                "  %a = f32[2] negate(%missing)\n}\n")
                     .ok());
    EXPECT_FALSE(ParseHloModule("module m\ncomputation c {\n"
                                "  %a = f32[2] frobnicate()\n}\n")
                     .ok());
    // Shape mismatch caught by the verifier.
    EXPECT_FALSE(ParseHloModule("module m\ncomputation c {\n"
                                "  %a = f32[2] parameter(), index=0\n"
                                "  ROOT %b = f32[3] negate(%a)\n}\n")
                     .ok());
}

}  // namespace
}  // namespace overlap
