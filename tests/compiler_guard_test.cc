/**
 * @file
 * Guarded pass pipeline: a pass that emits invalid HLO or returns an
 * error Status is rolled back to the pre-pass snapshot, disabled, and
 * reported as a structured PassDiagnostic -- compilation proceeds and
 * the final module is exactly what the healthy pipeline produces.
 */
#include <gtest/gtest.h>

#include <memory>

#include "core/overlap_compiler.h"
#include "hlo/builder.h"
#include "hlo/module.h"
#include "hlo/verifier.h"
#include "models/fault_presets.h"
#include "sim/engine.h"
#include "sim/fault_model.h"

namespace overlap {
namespace {

std::unique_ptr<HloModule>
BuildModule()
{
    auto module = std::make_unique<HloModule>("m");
    Mesh mesh(8);
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {2048, 4096}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {4096, 8192}));
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(ag, w, "bf,fh->bh"));
    return module;
}

/** A pass that corrupts the graph: declares a wrong result shape. */
InjectedPass
CorruptingPass()
{
    return {"corrupt-shapes", [](HloModule* module) -> Status {
                HloComputation* comp = module->entry();
                comp->set_root(comp->AddInstruction(
                    HloOpcode::kNegate, Shape({3, 3}), {comp->root()}));
                return Status::Ok();  // the verifier must catch it
            }};
}

/** A pass that mutates the graph and then reports failure itself. */
InjectedPass
SelfReportingBrokenPass()
{
    return {"self-reporting", [](HloModule* module) -> Status {
                HloComputation* comp = module->entry();
                HloBuilder b(comp);
                comp->set_root(b.Negate(comp->root()));
                return Internal("pass gave up halfway through");
            }};
}

TEST(CompilerGuardTest, CleanCompileHasNoDiagnostics)
{
    auto module = BuildModule();
    auto report = OverlapCompiler(CompilerOptions{}).Compile(module.get());
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->pass_diagnostics.empty());
    EXPECT_TRUE(VerifyModule(*module).ok());
}

TEST(CompilerGuardTest, InvalidHloIsCaughtRolledBackAndReported)
{
    auto reference = BuildModule();
    auto guarded = BuildModule();

    CompilerOptions clean;
    ASSERT_TRUE(OverlapCompiler(clean).Compile(reference.get()).ok());

    CompilerOptions broken;
    broken.extra_passes.push_back(CorruptingPass());
    auto report = OverlapCompiler(broken).Compile(guarded.get());
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    ASSERT_EQ(report->pass_diagnostics.size(), 1u);
    const PassDiagnostic& diagnostic = report->pass_diagnostics[0];
    EXPECT_EQ(diagnostic.pass_name, "corrupt-shapes");
    EXPECT_EQ(diagnostic.code, StatusCode::kInvalidArgument);
    EXPECT_TRUE(diagnostic.rolled_back);
    EXPECT_NE(diagnostic.error.find("shape mismatch"), std::string::npos)
        << diagnostic.error;
    EXPECT_NE(diagnostic.ToString().find("corrupt-shapes"),
              std::string::npos);
    EXPECT_NE(diagnostic.ToString().find("INVALID_ARGUMENT"),
              std::string::npos);

    // The rollback is exact: the guarded module ends up instruction-for-
    // instruction identical to a compile without the broken pass.
    EXPECT_TRUE(VerifyModule(*guarded).ok());
    EXPECT_EQ(guarded->entry()->ToString(), reference->entry()->ToString());

    // And it still simulates.
    auto run = PodSimulator(Mesh(8), HardwareSpec()).Run(*guarded);
    ASSERT_TRUE(run.ok());
    EXPECT_GT(run->step_seconds, 0.0);
}

TEST(CompilerGuardTest, ErrorStatusRollsBackTheMutation)
{
    auto reference = BuildModule();
    auto guarded = BuildModule();

    ASSERT_TRUE(
        OverlapCompiler(CompilerOptions{}).Compile(reference.get()).ok());

    CompilerOptions broken;
    broken.extra_passes.push_back(SelfReportingBrokenPass());
    auto report = OverlapCompiler(broken).Compile(guarded.get());
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->pass_diagnostics.size(), 1u);
    EXPECT_EQ(report->pass_diagnostics[0].pass_name, "self-reporting");
    EXPECT_EQ(report->pass_diagnostics[0].code, StatusCode::kInternal);
    // The Negate the pass added before failing must be gone.
    EXPECT_EQ(guarded->entry()->ToString(), reference->entry()->ToString());
}

TEST(CompilerGuardTest, UnguardedPipelinePropagatesTheFailure)
{
    auto module = BuildModule();
    CompilerOptions options;
    options.guard_passes = false;
    options.extra_passes.push_back(CorruptingPass());
    auto report = OverlapCompiler(options).Compile(module.get());
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompilerGuardTest, EachBrokenPassGetsItsOwnDiagnostic)
{
    auto module = BuildModule();
    CompilerOptions options;
    options.extra_passes.push_back(CorruptingPass());
    options.extra_passes.push_back(SelfReportingBrokenPass());
    auto report = OverlapCompiler(options).Compile(module.get());
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->pass_diagnostics.size(), 2u);
    EXPECT_EQ(report->pass_diagnostics[0].pass_name, "corrupt-shapes");
    EXPECT_EQ(report->pass_diagnostics[1].pass_name, "self-reporting");
    EXPECT_TRUE(VerifyModule(*module).ok());
}

TEST(CompilerGuardTest, ValidInjectedPassRunsThroughTheGuard)
{
    auto module = BuildModule();
    CompilerOptions options;
    options.extra_passes.push_back(
        {"extra-negate", [](HloModule* m) -> Status {
             HloBuilder b(m->entry());
             m->entry()->set_root(b.Negate(m->entry()->root()));
             return Status::Ok();
         }});
    auto report = OverlapCompiler(options).Compile(module.get());
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->pass_diagnostics.empty());
    EXPECT_EQ(module->entry()->root()->opcode(), HloOpcode::kNegate);
}

TEST(CompilerGuardTest, RollbackPreservesEarlierPassResults)
{
    // The decompose stats gathered before the broken pass must survive
    // its rollback (the report snapshot restores, then keeps, them).
    auto module = BuildModule();
    CompilerOptions options;
    options.decompose.use_cost_model = false;
    options.extra_passes.push_back(CorruptingPass());
    auto report = OverlapCompiler(options).Compile(module.get());
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->decompose.total_decomposed(), 1);
    EXPECT_GT(report->async_permutes, 0);
    ASSERT_EQ(report->pass_diagnostics.size(), 1u);
}

// ---------------------------------------------------------------------------
// Bucket-partition invariant: every decompose decision lands in exactly
// one of {decomposed, rejected_by_cost_model, fault_fallbacks}, with
// fault_lowered a refinement of the decomposed bucket. A site that was
// lowered to unidirectional must never also count as a fallback (the
// historical double-count), and a site the bidirectional emitter could
// never have used must not count as fault_lowered at all.
// ---------------------------------------------------------------------------

/**
 * Two sites: one large enough to decompose, one the gate rejects.
 * The rejected site is a contracting-dimension weight gather whose
 * full-output accumulation every iteration makes the decomposed loop
 * measurably slower than the blocking collective in traced simulation
 * (blocking ~99 us vs decomposed ~102 us on the default HardwareSpec)
 * — so the rejection is the verdict the simulator confirms, not just
 * the one the analytic formula prefers. (A latency-dominated tiny
 * free-dim site would no longer do: at eight partitions the blocking
 * collective pays seven serial hop latencies while the bidirectional
 * loop chains only three per direction, so the simulator shows a real
 * speedup and the calibrated gate rightly accepts it.)
 */
std::unique_ptr<HloModule>
BuildMixedSitesModule(const Mesh& mesh)
{
    auto module = std::make_unique<HloModule>("mixed");
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* big_p = b.Parameter(0, Shape(DType::kBF16, {2048, 4096}));
    auto* big_w = b.Parameter(1, Shape(DType::kBF16, {4096, 8192}));
    auto* big = b.Einsum(b.AllGather(big_p, 0, mesh.Groups(0)), big_w,
                         "bf,fh->bh");
    auto* slow_p = b.Parameter(2, Shape({1024, 4096}));
    auto* slow_w = b.Parameter(3, Shape({512, 512}));
    auto* slow = b.Einsum(slow_p, b.AllGather(slow_w, 0, mesh.Groups(0)),
                          "bf,fh->bh");
    comp->set_root(b.Tuple({big, slow}));
    return module;
}

TEST(CompilerGuardTest, DecisionBucketsPartitionMixedOutcomes)
{
    Mesh mesh(8);
    auto module = BuildMixedSitesModule(mesh);
    auto report = OverlapCompiler(CompilerOptions{}).Compile(module.get());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const DecomposeStats& stats = report->decompose;
    ASSERT_EQ(stats.decisions.size(), 2u);
    EXPECT_EQ(stats.total_decomposed(), 1);
    EXPECT_EQ(stats.rejected_by_cost_model, 1);
    EXPECT_EQ(stats.fault_fallbacks, 0);
    EXPECT_EQ(stats.fault_lowered, 0);
    EXPECT_TRUE(stats.BucketsConsistent());
}

TEST(CompilerGuardTest, FaultFallbackLandsInExactlyOneBucket)
{
    Mesh mesh(8);
    auto module = BuildModule();
    CompilerOptions options;
    options.fault = SingleDegradedLink(mesh, 0, 0.02).spec;
    auto report = OverlapCompiler(options).Compile(module.get());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const DecomposeStats& stats = report->decompose;
    ASSERT_EQ(stats.decisions.size(), 1u);
    EXPECT_EQ(stats.fault_fallbacks, 1);
    EXPECT_EQ(stats.total_decomposed(), 0);
    EXPECT_EQ(stats.rejected_by_cost_model, 0);
    // The fallback must not *also* register as a lowering: that was the
    // double-count — a fault_lowered tick with no decomposed site.
    EXPECT_EQ(stats.fault_lowered, 0);
    EXPECT_TRUE(stats.BucketsConsistent());
}

TEST(CompilerGuardTest, FaultLoweredStaysInsideDecomposedBucket)
{
    Mesh mesh(8);
    auto module = BuildModule();
    CompilerOptions options;
    LinkFault fault;
    fault.src = 0;
    fault.dst = mesh.RingNeighbor(0, 0, 1);
    fault.bandwidth_factor = 0.05;
    fault.latency_factor = 20.0;
    options.fault.link_faults.push_back(fault);
    auto report = OverlapCompiler(options).Compile(module.get());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const DecomposeStats& stats = report->decompose;
    ASSERT_EQ(stats.decisions.size(), 1u);
    EXPECT_EQ(stats.total_decomposed(), 1);
    EXPECT_EQ(stats.fault_lowered, 1);
    EXPECT_EQ(stats.fault_fallbacks, 0);
    EXPECT_EQ(stats.rejected_by_cost_model, 0);
    EXPECT_TRUE(stats.BucketsConsistent());
    EXPECT_LE(stats.fault_lowered, stats.total_decomposed());
}

TEST(CompilerGuardTest, IneligibleSiteIsNeverCountedFaultLowered)
{
    // Odd shard extent: the bidirectional emitter would refuse this
    // site, so a one-direction fault has nothing to lower — the site
    // must stay a plain decomposed (unidirectional) entry, not leak a
    // fault_lowered tick for a lowering that never happened.
    Mesh mesh(8);
    auto module = std::make_unique<HloModule>("odd");
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {2047, 4096}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {4096, 8192}));
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(ag, w, "bf,fh->bh"));

    CompilerOptions options;
    LinkFault fault;
    fault.src = 0;
    fault.dst = mesh.RingNeighbor(0, 0, 1);
    fault.bandwidth_factor = 0.05;
    fault.latency_factor = 20.0;
    options.fault.link_faults.push_back(fault);
    auto report = OverlapCompiler(options).Compile(module.get());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const DecomposeStats& stats = report->decompose;
    ASSERT_EQ(stats.decisions.size(), 1u);
    EXPECT_EQ(stats.fault_lowered, 0);
    EXPECT_TRUE(stats.BucketsConsistent());
}

}  // namespace
}  // namespace overlap
