/**
 * @file
 * Fault-injection layer: determinism of the seeded fault model, exact
 * bit-identity of the fault-free path, the asymmetry between decomposed
 * rings (serialized on a degraded link) and blocking collectives
 * (assumed to route around it), the variance-aware §5.5 gate, and the
 * seeded trial statistics.
 */
#include <gtest/gtest.h>

#include <memory>

#include "core/overlap_compiler.h"
#include "core/pod_runner.h"
#include "hlo/builder.h"
#include "hlo/module.h"
#include "models/fault_presets.h"
#include "sim/engine.h"
#include "sim/fault_model.h"

namespace overlap {
namespace {

/** The CostModelAcceptsLargeSites module: AllGather feeding an einsum. */
std::unique_ptr<HloModule>
BuildLargeAllGatherModule(const Mesh& mesh)
{
    auto module = std::make_unique<HloModule>("m");
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {2048, 4096}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {4096, 8192}));
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(ag, w, "bf,fh->bh"));
    return module;
}

TEST(FaultModelTest, DefaultModelIsExactlyFaultFree)
{
    FaultModel fault;
    EXPECT_TRUE(fault.fault_free());
    Mesh mesh(8);
    for (int64_t d = 0; d < 8; ++d) {
        EXPECT_EQ(fault.ChipComputeFactor(d), 1.0);
        EXPECT_EQ(fault.LinkBandwidthFactor(d, (d + 1) % 8), 1.0);
        EXPECT_EQ(fault.LinkLatencyFactor(d, (d + 1) % 8), 1.0);
        EXPECT_EQ(fault.TrialChipFactor(d, 5), 1.0);
    }
    EXPECT_EQ(fault.SlowestLinkFactor(mesh, 0, 0), 1.0);
    EXPECT_EQ(fault.SlowestLinkFactor(mesh, 0, 1), 1.0);
    EXPECT_EQ(fault.WorstLinkLatencyFactor(mesh, 0, 0), 1.0);
    EXPECT_EQ(fault.SlowestChipFactor(8, 3), 1.0);
    EXPECT_EQ(fault.TransferFailures(17, 4), 0);
}

TEST(FaultModelTest, SameSeedReproducesSameFaults)
{
    FaultSpec spec;
    spec.seed = 42;
    spec.link_degrade_probability = 0.3;
    spec.straggler_probability = 0.3;
    spec.link_jitter = 0.2;
    spec.compute_jitter = 0.2;
    spec.transient_failure_probability = 0.2;
    FaultModel a(spec), b(spec);
    EXPECT_FALSE(a.fault_free());
    for (int64_t d = 0; d < 16; ++d) {
        EXPECT_EQ(a.ChipComputeFactor(d), b.ChipComputeFactor(d));
        EXPECT_EQ(a.LinkBandwidthFactor(d, d + 1),
                  b.LinkBandwidthFactor(d, d + 1));
        EXPECT_EQ(a.TrialLinkFactor(d, d + 1, 3),
                  b.TrialLinkFactor(d, d + 1, 3));
        EXPECT_EQ(a.TransferFailures(d, 2), b.TransferFailures(d, 2));
    }
    // A different seed draws a different pod.
    spec.seed = 43;
    FaultModel c(spec);
    bool any_difference = false;
    for (int64_t d = 0; d < 64 && !any_difference; ++d) {
        any_difference =
            a.LinkBandwidthFactor(d, d + 1) !=
                c.LinkBandwidthFactor(d, d + 1) ||
            a.ChipComputeFactor(d) != c.ChipComputeFactor(d) ||
            a.TransferFailures(d, 0) != c.TransferFailures(d, 0);
    }
    EXPECT_TRUE(any_difference);
}

TEST(FaultModelTest, TrialsResampleOnlyTransientNoise)
{
    FaultSpec spec;
    spec.seed = 9;
    spec.link_degrade_probability = 0.5;
    spec.link_jitter = 0.3;
    FaultModel fault(spec);
    // Persistent factor is trial-independent; the trial factor differs
    // across trials (jitter) but never exceeds the persistent factor.
    double persistent = fault.LinkBandwidthFactor(2, 3);
    bool trials_differ = false;
    double previous = -1.0;
    for (int64_t trial = 0; trial < 8; ++trial) {
        double f = fault.TrialLinkFactor(2, 3, trial);
        EXPECT_LE(f, persistent);
        EXPECT_GT(f, 0.0);
        if (previous >= 0.0 && f != previous) trials_differ = true;
        previous = f;
    }
    EXPECT_TRUE(trials_differ);
}

TEST(FaultModelTest, ExplicitFaultsOverrideAndAggregate)
{
    Mesh mesh(8);
    FaultSpec spec;
    LinkFault link;
    link.src = 0;
    link.dst = mesh.RingNeighbor(0, 0, -1);  // engine direction 0
    link.bandwidth_factor = 0.25;
    link.latency_factor = 4.0;
    spec.link_faults.push_back(link);
    ChipFault chip;
    chip.chip = 3;
    chip.compute_factor = 0.5;
    spec.chip_faults.push_back(chip);
    FaultModel fault(spec);
    EXPECT_FALSE(fault.fault_free());
    EXPECT_EQ(fault.LinkBandwidthFactor(link.src, link.dst), 0.25);
    EXPECT_EQ(fault.LinkLatencyFactor(link.src, link.dst), 4.0);
    EXPECT_EQ(fault.LinkBandwidthFactor(1, 0), 1.0);
    // Ring lockstep: the slowest link of the direction is the channel rate.
    EXPECT_EQ(fault.SlowestLinkFactor(mesh, 0, 0), 0.25);
    EXPECT_EQ(fault.SlowestLinkFactor(mesh, 0, 1), 1.0);
    EXPECT_EQ(fault.WorstLinkLatencyFactor(mesh, 0, 0), 4.0);
    EXPECT_EQ(fault.SlowestChipFactor(8), 0.5);
    EXPECT_EQ(fault.SlowestChipFactor(3), 1.0);  // chip 3 outside pod
}

TEST(FaultModelTest, FaultFreeSimulationIsBitIdentical)
{
    Mesh mesh(8);
    auto module = BuildLargeAllGatherModule(mesh);
    OverlapCompiler compiler(CompilerOptions{});
    ASSERT_TRUE(compiler.Compile(module.get()).ok());

    HardwareSpec spec;
    PodSimulator plain(mesh, spec);
    PodSimulator with_default_fault(mesh, spec, FaultModel(FaultSpec()));
    auto a = plain.Run(*module);
    auto b = with_default_fault.Run(*module);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Exact equality, not near: the fault-free path must not perturb a
    // single bit of the arithmetic.
    EXPECT_EQ(a->step_seconds, b->step_seconds);
    EXPECT_EQ(a->compute_seconds, b->compute_seconds);
    EXPECT_EQ(a->exposed_comm_seconds, b->exposed_comm_seconds);
    EXPECT_EQ(a->transferred_bytes, b->transferred_bytes);
    EXPECT_EQ(b->retry.retries, 0);
    EXPECT_EQ(b->straggler_stall_seconds, 0.0);
}

TEST(FaultModelTest, DegradedLinkLengthensDecomposedButNotBlocking)
{
    Mesh mesh(8);
    HardwareSpec spec;
    FaultModel degraded(SingleDegradedLink(mesh, 0, 0.1).spec);

    // Decomposed program: ring permutes serialize on the slow link.
    auto decomposed = BuildLargeAllGatherModule(mesh);
    CompilerOptions force;
    force.decompose.use_cost_model = false;
    ASSERT_TRUE(OverlapCompiler(force).Compile(decomposed.get()).ok());
    auto healthy_run = PodSimulator(mesh, spec).Run(*decomposed);
    auto degraded_run =
        PodSimulator(mesh, spec, degraded).Run(*decomposed);
    ASSERT_TRUE(healthy_run.ok());
    ASSERT_TRUE(degraded_run.ok());
    EXPECT_GT(degraded_run->step_seconds, healthy_run->step_seconds);

    // Blocking baseline: the runtime collective routes around the link.
    auto blocking = BuildLargeAllGatherModule(mesh);
    ASSERT_TRUE(OverlapCompiler(CompilerOptions::Baseline())
                    .Compile(blocking.get())
                    .ok());
    auto blocking_healthy = PodSimulator(mesh, spec).Run(*blocking);
    auto blocking_degraded =
        PodSimulator(mesh, spec, degraded).Run(*blocking);
    ASSERT_TRUE(blocking_healthy.ok());
    ASSERT_TRUE(blocking_degraded.ok());
    EXPECT_EQ(blocking_degraded->step_seconds,
              blocking_healthy->step_seconds);
}

TEST(FaultModelTest, VarianceAwareGateFallsBackOnSevereDegradation)
{
    Mesh mesh(8);
    // Healthy pod: the large site is profitable and decomposes.
    auto healthy_module = BuildLargeAllGatherModule(mesh);
    CompilerOptions healthy;
    auto healthy_report =
        OverlapCompiler(healthy).Compile(healthy_module.get());
    ASSERT_TRUE(healthy_report.ok());
    EXPECT_EQ(healthy_report->decompose.total_decomposed(), 1);
    ASSERT_EQ(healthy_report->decompose.decisions.size(), 1u);
    EXPECT_EQ(healthy_report->decompose.decisions[0].reason, "decomposed");
    EXPECT_EQ(healthy_report->decompose.decisions[0].benefit_nominal,
              healthy_report->decompose.decisions[0].benefit_derated);

    // Severely degraded ring link: the decomposed loop serializes on it
    // while the blocking collective does not -> fall back.
    auto degraded_module = BuildLargeAllGatherModule(mesh);
    CompilerOptions faulted;
    faulted.fault = SingleDegradedLink(mesh, 0, 0.02).spec;
    auto report = OverlapCompiler(faulted).Compile(degraded_module.get());
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->decompose.total_decomposed(), 0);
    EXPECT_EQ(report->decompose.fault_fallbacks, 1);
    ASSERT_EQ(report->decompose.decisions.size(), 1u);
    const SiteDecision& decision = report->decompose.decisions[0];
    EXPECT_EQ(decision.reason, "fault_fallback_blocking");
    EXPECT_FALSE(decision.decomposed);
    EXPECT_GT(decision.benefit_nominal, 0.0);
    EXPECT_LT(decision.benefit_derated, 0.0);

    // The fallback module must still compile to something simulable and
    // keep the blocking collective's fault-immunity.
    HardwareSpec spec;
    auto run = PodSimulator(mesh, spec, FaultModel(faulted.fault))
                   .Run(*degraded_module);
    ASSERT_TRUE(run.ok());
}

TEST(FaultModelTest, GateLowersToUnidirectionalWhenOneDirectionIsSlow)
{
    Mesh mesh(8);
    auto module = BuildLargeAllGatherModule(mesh);
    // Degrade only engine direction 1 (data toward the higher ring
    // position): the bidirectional loop needs both directions, the
    // unidirectional loop only direction 0.
    CompilerOptions options;
    LinkFault fault;
    fault.src = 0;
    fault.dst = mesh.RingNeighbor(0, 0, 1);
    fault.bandwidth_factor = 0.05;
    fault.latency_factor = 20.0;
    options.fault.link_faults.push_back(fault);
    auto report = OverlapCompiler(options).Compile(module.get());
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->decompose.decisions.size(), 1u);
    const SiteDecision& decision = report->decompose.decisions[0];
    EXPECT_TRUE(decision.decomposed);
    EXPECT_TRUE(decision.lowered_to_unidirectional);
    EXPECT_EQ(report->decompose.fault_lowered, 1);
    EXPECT_EQ(report->decompose.total_decomposed(), 1);
}

TEST(FaultModelTest, TransientFailuresRetryAndCount)
{
    Mesh mesh(8);
    auto module = BuildLargeAllGatherModule(mesh);
    CompilerOptions force;
    force.decompose.use_cost_model = false;
    ASSERT_TRUE(OverlapCompiler(force).Compile(module.get()).ok());

    HardwareSpec spec;
    FaultSpec flaky = FlakyFabric(/*failure_probability=*/0.3).spec;
    PodSimulator sim(mesh, spec, FaultModel(flaky));
    auto faulty = sim.Run(*module);
    auto clean = PodSimulator(mesh, spec).Run(*module);
    ASSERT_TRUE(faulty.ok());
    ASSERT_TRUE(clean.ok());
    EXPECT_GT(faulty->retry.retries, 0);
    EXPECT_GT(faulty->step_seconds, clean->step_seconds);
    EXPECT_GT(faulty->transferred_bytes, clean->transferred_bytes);

    // Same seed, same trial -> identical counts (reproducible traces).
    auto again = sim.Run(*module);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->retry.retries, faulty->retry.retries);
    EXPECT_EQ(again->step_seconds, faulty->step_seconds);
}

TEST(FaultModelTest, TrialStatsArePercentileOrderedAndReproducible)
{
    Mesh mesh(8);
    auto module = BuildLargeAllGatherModule(mesh);
    CompilerOptions force;
    force.decompose.use_cost_model = false;
    ASSERT_TRUE(OverlapCompiler(force).Compile(module.get()).ok());

    HardwareSpec spec;
    FaultSpec noisy = AgingPod(/*seed=*/5).spec;
    noisy.transient_failure_probability = 0.05;
    PodSimulator sim(mesh, spec, FaultModel(noisy));
    auto trials = sim.RunTrials(*module, 32);
    ASSERT_TRUE(trials.ok());
    EXPECT_EQ(trials->num_trials, 32);
    EXPECT_EQ(trials->step_seconds.size(), 32u);
    EXPECT_LE(trials->min_step_seconds, trials->p50_step_seconds);
    EXPECT_LE(trials->p50_step_seconds, trials->p99_step_seconds);
    EXPECT_LE(trials->p99_step_seconds, trials->max_step_seconds);
    EXPECT_GT(trials->min_step_seconds, 0.0);

    auto again = sim.RunTrials(*module, 32);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->step_seconds, trials->step_seconds);
    EXPECT_EQ(again->total_retries, trials->total_retries);

    // Fault-free trials collapse to a point distribution.
    auto flat = PodSimulator(mesh, spec).RunTrials(*module, 8);
    ASSERT_TRUE(flat.ok());
    EXPECT_EQ(flat->min_step_seconds, flat->max_step_seconds);
    EXPECT_EQ(flat->total_retries, 0);
}

TEST(FaultModelTest, PodRunnerForwardsFaultsToGateAndSimulator)
{
    // End-to-end through SimulateModelStepTrials: a degraded pod makes
    // the runner's p99 at least its p50, and the compile report carries
    // the gate's decisions.
    ModelConfig config = Table2GptModels()[0];
    CompilerOptions options;
    options.fault = AgingPod(/*seed=*/3).spec;
    options.fault.transient_failure_probability = 0.02;
    auto report = SimulateModelStepTrials(config, options, 8);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->trials.num_trials, 8);
    EXPECT_GE(report->p99_step_seconds, report->p50_step_seconds);
    EXPECT_GT(report->p50_step_seconds, 0.0);
    EXPECT_FALSE(report->compile.decompose.decisions.empty());
}

}  // namespace
}  // namespace overlap
