/**
 * @file
 * Calibration regression suite (DESIGN.md §15), ctest label
 * `calibration`: the fitted §5.5 replay must keep predicting what the
 * traced simulator measures, and the gate decisions it drives must
 * keep being right.
 *
 *   - the committed CalibrationFit::Fitted() coefficients match a
 *     re-run of the fit over the calibration site space, and the
 *     residuals stay inside the bounds recorded when they were fitted;
 *   - over the overlap-report site space under the default (gated)
 *     compiler, every decomposed verdict simulates an actual speedup
 *     >= 1 - tolerance, and every rejection is justified (forcing the
 *     gate open simulates no speedup worth having);
 *   - the per-site hidden-fraction prediction error — graded against
 *     the forced-decomposed trace for rejected sites — stays under the
 *     0.15 mean gate;
 *   - the GPT_32B model report decomposes sites, speeds up, and grades
 *     its predictions inside the same mean-error gate.
 */
#include <algorithm>
#include <cmath>
#include <utility>

#include <gtest/gtest.h>

#include "core/overlap_report.h"
#include "core/pod_runner.h"
#include "difftest/calibration.h"
#include "difftest/difftest.h"
#include "models/model_config.h"

namespace overlap {
namespace {

using difftest::BuildSiteModule;
using difftest::CalibrationSiteSpace;
using difftest::CollectCalibrationSamples;
using difftest::FitCalibration;
using difftest::OverlapReportSiteSpace;
using difftest::SiteSpec;

/// The fit driver's arguments behind CalibrationFit::Fitted()
/// (bench/calibration_fit defaults).
constexpr uint64_t kFitSeed = 11;
constexpr int64_t kFitGeneratedSites = 16;

/// Gate tolerances (DESIGN.md §15). The speedup tolerance matches the
/// gate's own decision_margin.
constexpr double kSpeedupTolerance = 0.02;
constexpr double kMaxMeanHiddenFractionError = 0.15;

struct GatedRun {
    OverlapReport report;
    double actual_speedup = 0.0;
};

/** Compiles, simulates (traced) and reports one site, plus the
 * blocking baseline for the actual speedup. */
GatedRun
RunSite(const SiteSpec& spec, bool force)
{
    auto module = BuildSiteModule(spec);
    EXPECT_TRUE(module.ok()) << module.status().ToString();
    CompilerOptions options;
    options.decompose.use_cost_model = !force;
    auto compile = OverlapCompiler(options).Compile(module->get());
    EXPECT_TRUE(compile.ok()) << compile.status().ToString();

    PodSimulator simulator(spec.mesh(), options.hardware);
    auto sim = simulator.Run(**module, /*collect_trace=*/true);
    EXPECT_TRUE(sim.ok()) << sim.status().ToString();

    auto report = BuildOverlapReport(compile.value(), sim.value());
    EXPECT_TRUE(report.ok()) << report.status().ToString();

    auto blocking = BuildSiteModule(spec);
    EXPECT_TRUE(blocking.ok());
    auto baseline_compile =
        OverlapCompiler(CompilerOptions::Baseline()).Compile(blocking->get());
    EXPECT_TRUE(baseline_compile.ok());
    auto baseline_sim = simulator.Run(**blocking);
    EXPECT_TRUE(baseline_sim.ok());

    GatedRun run;
    run.report = std::move(report).value();
    run.actual_speedup = sim->step_seconds > 0.0
                             ? baseline_sim->step_seconds / sim->step_seconds
                             : 1.0;
    return run;
}

TEST(CalibrationTest, FittedCoefficientsMatchRefit)
{
    auto samples = CollectCalibrationSamples(
        CalibrationSiteSpace(kFitSeed, kFitGeneratedSites),
        HardwareSpec());
    ASSERT_TRUE(samples.ok()) << samples.status().ToString();
    ASSERT_FALSE(samples->empty());

    difftest::CalibrationSummary summary = FitCalibration(*samples);
    CalibrationFit committed = CalibrationFit::Fitted();
    for (int s = 0; s < kNumLoopStructures; ++s) {
        auto i = static_cast<size_t>(s);
        EXPECT_NEAR(summary.fit.wire_scale[i], committed.wire_scale[i],
                    1e-6)
            << "wire scale for "
            << LoopStructureName(static_cast<LoopStructure>(s))
            << " drifted from the committed fit — re-run "
               "bench/calibration_fit and update "
               "CalibrationFit::Fitted()";
    }

    // Residual bounds recorded when the fit was committed (mean 3.0%,
    // worst 17.9% on tiny latency-dominated unidirectional loops),
    // with headroom so timing jitter-free model changes, not noise,
    // trip them.
    EXPECT_LE(summary.overall_mean_abs_error, 0.05);
    EXPECT_LE(summary.max_abs_error, 0.25);

    // Every structure the replay models is represented in the fit.
    for (int s = 0; s < kNumLoopStructures; ++s) {
        EXPECT_GT(summary.samples_per_structure[static_cast<size_t>(s)],
                  0)
            << "no calibration sample emits "
            << LoopStructureName(static_cast<LoopStructure>(s));
    }
}

TEST(CalibrationTest, DecomposedVerdictsSpeedUpRejectionsJustified)
{
    for (const SiteSpec& spec : OverlapReportSiteSpace()) {
        GatedRun gated = RunSite(spec, /*force=*/false);
        ASSERT_FALSE(gated.report.sites.empty())
            << spec.ToString() << ": no matched site";
        for (const SiteOverlapReport& site : gated.report.sites) {
            if (site.decomposed) {
                EXPECT_GE(gated.actual_speedup, 1.0 - kSpeedupTolerance)
                    << spec.ToString()
                    << ": gate accepted a site that simulates a slowdown";
            } else {
                // The gate said no: forcing it open must not reveal a
                // speedup it should have taken.
                GatedRun forced = RunSite(spec, /*force=*/true);
                EXPECT_LT(forced.actual_speedup,
                          1.0 + kSpeedupTolerance)
                    << spec.ToString()
                    << ": gate rejected a site that simulates a speedup";
            }
        }
    }
}

TEST(CalibrationTest, HiddenFractionErrorUnderGate)
{
    double error_sum = 0.0;
    int64_t error_count = 0;
    for (const SiteSpec& spec : OverlapReportSiteSpace()) {
        GatedRun gated = RunSite(spec, /*force=*/false);
        // Rejected sites are graded against the loop they would have
        // emitted, same as bench/overlap_report --check.
        const OverlapReport& graded =
            gated.report.error_sites > 0
                ? gated.report
                : RunSite(spec, /*force=*/true).report;
        ASSERT_GT(graded.error_sites, 0)
            << spec.ToString() << ": no graded prediction";
        error_sum += graded.mean_abs_hidden_fraction_error;
        ++error_count;
        for (const SiteOverlapReport& site : graded.sites) {
            if (!site.has_prediction_error) continue;
            EXPECT_GE(site.predicted_hidden_fraction, 0.0);
            EXPECT_LE(site.predicted_hidden_fraction, 1.0);
            EXPECT_LE(std::fabs(site.hidden_fraction_error), 1.0);
        }
    }
    ASSERT_GT(error_count, 0);
    EXPECT_LE(error_sum / static_cast<double>(error_count),
              kMaxMeanHiddenFractionError);
}

TEST(CalibrationTest, Gpt32BModelReportHoldsTheGate)
{
    const ModelConfig* model = FindModel("GPT_32B");
    ASSERT_NE(model, nullptr);
    auto analysis = AnalyzeModelOverlap(*model, CompilerOptions());
    ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();

    const OverlapReport& report = analysis->report;
    EXPECT_GT(report.decomposed_sites(), 0)
        << "calibrated gate decomposes nothing in GPT_32B";
    EXPECT_GE(report.actual_speedup, 1.0 - kSpeedupTolerance)
        << "decomposition made the GPT_32B layer slower";
    EXPECT_GT(report.error_sites, 0);

    // Inside a whole layer a loop's flights also hide under the
    // *surrounding* compute, so the isolated-loop prediction is
    // expected to be conservative there (signed error < 0). What the
    // gate must never let back in is the old model's optimism: grade
    // only the optimistic side of each site's error.
    double optimism_sum = 0.0;
    int64_t graded = 0;
    for (const SiteOverlapReport& site : report.sites) {
        if (!site.has_prediction_error) continue;
        optimism_sum += std::max(0.0, site.hidden_fraction_error);
        ++graded;
    }
    ASSERT_GT(graded, 0);
    EXPECT_LE(optimism_sum / static_cast<double>(graded),
              kMaxMeanHiddenFractionError);
}

}  // namespace
}  // namespace overlap
