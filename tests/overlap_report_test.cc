/**
 * @file
 * Invariants of the overlap-efficiency report (DESIGN.md §13) over
 * difftest-generated sites: interval accounting must close exactly
 * (hidden + exposed == total), fractions must be probabilities, and
 * every gate verdict must be reproducible from the cost inputs the
 * decision logged (SiteDecision::RecomputedBenefit).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/overlap_report.h"
#include "difftest/difftest.h"
#include "sim/engine.h"

namespace overlap {
namespace {

using difftest::BuildSiteModule;
using difftest::GenerateSiteSpec;
using difftest::SiteSpec;

/** Compiles and trace-simulates one difftest site. */
struct SiteRun {
    CompileReport compile;
    SimResult sim;
};

SiteRun
RunSite(const SiteSpec& spec, bool use_cost_model)
{
    SiteRun run;
    auto module = BuildSiteModule(spec);
    EXPECT_TRUE(module.ok()) << module.status().ToString();
    CompilerOptions options;
    options.decompose.use_cost_model = use_cost_model;
    OverlapCompiler compiler(options);
    auto compile = compiler.Compile(module->get());
    EXPECT_TRUE(compile.ok()) << compile.status().ToString();
    run.compile = std::move(compile).value();
    PodSimulator simulator(spec.mesh(), options.hardware);
    auto sim = simulator.Run(**module, /*collect_trace=*/true);
    EXPECT_TRUE(sim.ok()) << sim.status().ToString();
    run.sim = std::move(sim).value();
    return run;
}

void
CheckAccounting(const SiteOverlapReport& site, const std::string& where)
{
    constexpr double kTol = 1e-12;
    EXPECT_NEAR(site.sim_hidden_comm_seconds +
                    site.sim_exposed_comm_seconds,
                site.sim_total_comm_seconds, kTol)
        << where;
    EXPECT_GE(site.sim_hidden_comm_seconds, -kTol) << where;
    EXPECT_GE(site.sim_exposed_comm_seconds, -kTol) << where;
    EXPECT_GE(site.sim_hidden_fraction, 0.0) << where;
    EXPECT_LE(site.sim_hidden_fraction, 1.0) << where;
    EXPECT_GE(site.predicted_hidden_fraction, 0.0) << where;
    EXPECT_LE(site.predicted_hidden_fraction, 1.0) << where;
    EXPECT_GT(site.predicted_speedup, 0.0) << where;
}

TEST(OverlapReportTest, RequiresATracedSimulation)
{
    SiteSpec spec = GenerateSiteSpec(/*seed=*/11, 0);
    auto module = BuildSiteModule(spec);
    ASSERT_TRUE(module.ok());
    OverlapCompiler compiler((CompilerOptions()));
    auto compile = compiler.Compile(module->get());
    ASSERT_TRUE(compile.ok());
    PodSimulator simulator(spec.mesh(), HardwareSpec());
    auto sim = simulator.Run(**module);  // no trace collected
    ASSERT_TRUE(sim.ok());
    auto report = BuildOverlapReport(compile.value(), sim.value());
    EXPECT_FALSE(report.ok());
}

TEST(OverlapReportTest, IntervalAccountingClosesOnGeneratedSites)
{
    // Forced decomposition exercises the loop-group attribution path on
    // all four §5.1 cases and both shard-extent parities.
    for (int64_t i = 0; i < 8; ++i) {
        SiteSpec spec = GenerateSiteSpec(/*seed=*/5, i);
        SiteRun run = RunSite(spec, /*use_cost_model=*/false);
        auto report = BuildOverlapReport(run.compile, run.sim);
        ASSERT_TRUE(report.ok()) << report.status().ToString();

        SiteOverlapReport rollup;
        rollup.sim_total_comm_seconds = report->total_comm_seconds;
        rollup.sim_exposed_comm_seconds = report->exposed_comm_seconds;
        rollup.sim_hidden_comm_seconds = report->hidden_comm_seconds;
        rollup.sim_hidden_fraction = report->hidden_fraction;
        rollup.predicted_speedup = 1.0;
        CheckAccounting(rollup, "rollup " + spec.ToString());

        ASSERT_FALSE(report->sites.empty()) << spec.ToString();
        for (const SiteOverlapReport& site : report->sites) {
            CheckAccounting(site,
                            site.collective + " " + spec.ToString());
            EXPECT_TRUE(site.decomposed) << spec.ToString();
            EXPECT_GE(site.loop_group, 0) << spec.ToString();
            // The loop-group join found the site's events: a decomposed
            // site always puts transfers on the wire.
            EXPECT_GT(site.sim_total_comm_seconds, 0.0)
                << site.collective << " " << spec.ToString();
            // Site-local communication is part of the whole step's.
            EXPECT_LE(site.sim_total_comm_seconds,
                      report->total_comm_seconds + 1e-12)
                << spec.ToString();
        }
        // Forced decomposition of tiny sites is legitimately
        // unprofitable; the step-level prediction only has to stay a
        // positive ratio.
        EXPECT_GT(report->predicted_speedup, 0.0) << spec.ToString();
    }
}

TEST(OverlapReportTest, GateVerdictsMatchRecomputedBenefit)
{
    // Under the real cost model, every decision's verdict must be
    // derivable from the §5.5 inputs it logged: decomposed sites carry
    // a non-negative recomputed benefit, rejected sites a negative one.
    int64_t decisions_seen = 0;
    for (int64_t i = 0; i < 8; ++i) {
        SiteSpec spec = GenerateSiteSpec(/*seed=*/5, i);
        SiteRun run = RunSite(spec, /*use_cost_model=*/true);
        auto report = BuildOverlapReport(run.compile, run.sim);
        ASSERT_TRUE(report.ok()) << report.status().ToString();
        ASSERT_EQ(report->sites.size(),
                  run.compile.decompose.decisions.size());
        for (size_t s = 0; s < report->sites.size(); ++s) {
            const SiteOverlapReport& site = report->sites[s];
            const SiteDecision& decision =
                run.compile.decompose.decisions[s];
            ++decisions_seen;
            CheckAccounting(site,
                            site.collective + " " + spec.ToString());
            EXPECT_EQ(site.decomposed, site.reason == "decomposed")
                << spec.ToString();
            const double benefit = decision.RecomputedBenefit();
            if (decision.reason == "decomposed") {
                EXPECT_GE(benefit, 0.0)
                    << site.collective << " " << spec.ToString();
            } else if (decision.reason == "rejected_by_cost_model") {
                EXPECT_LT(benefit, 0.0)
                    << site.collective << " " << spec.ToString();
            }
            EXPECT_NEAR(benefit, decision.benefit_derated, 1e-9)
                << spec.ToString();
            // The report copied the decision's inputs verbatim.
            EXPECT_EQ(site.comp_t, decision.comp_t);
            EXPECT_EQ(site.comm_t, decision.comm_t);
            EXPECT_EQ(site.comm_t_ring, decision.comm_t_ring);
            EXPECT_EQ(site.extra_t, decision.extra_t);
        }
    }
    EXPECT_GT(decisions_seen, 0);
}

TEST(OverlapReportTest, JsonRoundTripsTheAccountingInvariant)
{
    SiteSpec spec = GenerateSiteSpec(/*seed=*/5, 0);
    SiteRun run = RunSite(spec, /*use_cost_model=*/false);
    auto report = BuildOverlapReport(run.compile, run.sim);
    ASSERT_TRUE(report.ok());
    std::string json = report->ToJson();
    // The serialization keeps enough digits that the invariant is
    // checkable by a consumer of the JSON, not only in memory.
    auto field = [&json](const std::string& key) {
        size_t pos = json.find("\"" + key + "\":");
        EXPECT_NE(pos, std::string::npos) << key;
        return std::strtod(json.c_str() + pos + key.size() + 3, nullptr);
    };
    const double total = field("total_comm_seconds");
    const double exposed = field("exposed_comm_seconds");
    const double hidden = field("hidden_comm_seconds");
    EXPECT_GT(total, 0.0);
    EXPECT_NEAR(hidden + exposed, total, 1e-12 + 1e-9 * total);
}

}  // namespace
}  // namespace overlap
