#include <gtest/gtest.h>

#include "hlo/builder.h"
#include "hlo/module.h"
#include "passes/fusion.h"
#include "sim/sched_graph.h"

namespace overlap {
namespace {

/**
 * Builds the Figure 11 pattern: Add(einsum_0, einsum_1) where einsum_1
 * consumes a CollectivePermuteDone and einsum_0 is independent.
 */
struct Figure11 {
    std::unique_ptr<HloModule> module;
    HloInstruction* independent_einsum;
    HloInstruction* dependent_einsum;
    HloInstruction* addition;
};

Figure11
BuildFigure11()
{
    Figure11 f;
    f.module = std::make_unique<HloModule>("fig11");
    f.module->set_mesh(Mesh(2));
    HloComputation* comp = f.module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* a = b.Parameter(0, Shape(DType::kBF16, {64, 64}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {64, 64}));
    auto* start = b.CollectivePermuteStart(a, {{0, 1}, {1, 0}});
    auto* done = b.CollectivePermuteDone(start);
    f.independent_einsum = b.Einsum(a, w, "mk,kn->mn");
    f.dependent_einsum = b.Einsum(done, w, "mk,kn->mn");
    f.addition = b.Add(f.independent_einsum, f.dependent_einsum);
    comp->set_root(f.addition);
    return f;
}

TEST(FusionTest, DefaultHeuristicCreatesBadDependence)
{
    Figure11 f = BuildFigure11();
    auto groups =
        RunFusionPass(f.module->entry(), FusionHeuristic::kDefault);
    ASSERT_TRUE(groups.ok());
    // Figure 11 (a): the Addition fuses with the first (independent)
    // einsum, chaining it behind the in-flight permute.
    EXPECT_GE(f.addition->fusion_group(), 0);
    EXPECT_EQ(f.addition->fusion_group(),
              f.independent_einsum->fusion_group());
    EXPECT_EQ(f.dependent_einsum->fusion_group(), -1);

    // The fused unit now (transitively) depends on the Done.
    CostModel cost{HardwareSpec{}};
    SchedGraph graph(*f.module->entry(), cost);
    SchedUnit* fused = graph.unit_of(f.addition);
    bool depends_on_done = false;
    for (const SchedUnit* op : fused->operands) {
        if (op->IsPermuteDone()) depends_on_done = true;
        for (const SchedUnit* op2 : op->operands) {
            if (op2->IsPermuteDone()) depends_on_done = true;
        }
    }
    EXPECT_TRUE(depends_on_done);
}

TEST(FusionTest, OverlapAwareFusesWithTheDependentEinsum)
{
    Figure11 f = BuildFigure11();
    auto groups =
        RunFusionPass(f.module->entry(), FusionHeuristic::kOverlapAware);
    ASSERT_TRUE(groups.ok());
    // Figure 11 (b): the Addition fuses with the einsum that already
    // consumes the Done, leaving the other free to overlap the transfer.
    EXPECT_EQ(f.addition->fusion_group(),
              f.dependent_einsum->fusion_group());
    EXPECT_EQ(f.independent_einsum->fusion_group(), -1);
}

TEST(FusionTest, OverlapAwareLeavesDoneReadingCombinersUnfused)
{
    // The single-chain ReduceScatter pattern: acc = Add(done, partial).
    // Fusing would serialize the einsum behind the transfer; the
    // overlap-aware heuristic declines (§5.4.1 discussion).
    HloModule module("rs_chain");
    module.set_mesh(Mesh(2));
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* acc = b.Parameter(0, Shape(DType::kBF16, {64, 64}));
    auto* a = b.Parameter(1, Shape(DType::kBF16, {64, 64}));
    auto* w = b.Parameter(2, Shape(DType::kBF16, {64, 64}));
    auto* start = b.CollectivePermuteStart(acc, {{0, 1}, {1, 0}});
    auto* done = b.CollectivePermuteDone(start);
    auto* partial = b.Einsum(a, w, "mk,kn->mn");
    auto* add = b.Add(done, partial);
    comp->set_root(add);
    auto groups = RunFusionPass(comp, FusionHeuristic::kOverlapAware);
    ASSERT_TRUE(groups.ok());
    EXPECT_EQ(add->fusion_group(), -1);
    EXPECT_EQ(partial->fusion_group(), -1);

    // The default heuristic fuses and pays the serialization.
    auto default_groups = RunFusionPass(comp, FusionHeuristic::kDefault);
    ASSERT_TRUE(default_groups.ok());
    EXPECT_GE(add->fusion_group(), 0);
    EXPECT_EQ(add->fusion_group(), partial->fusion_group());
}

TEST(FusionTest, PreservesDecomposerGroups)
{
    // A combiner joins an existing (bidirectional-pair) group.
    HloModule module("pair");
    module.set_mesh(Mesh(2));
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* a = b.Parameter(0, Shape(DType::kBF16, {32, 32}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {32, 32}));
    auto* e1 = b.Einsum(a, w, "mk,kn->mn");
    auto* e2 = b.Einsum(a, w, "mk,kn->mn");
    int64_t pair = comp->NextFusionGroupId();
    e1->set_fusion_group(pair);
    e2->set_fusion_group(pair);
    auto* add = b.Add(e1, e2);
    comp->set_root(add);
    ASSERT_TRUE(RunFusionPass(comp, FusionHeuristic::kDefault).ok());
    EXPECT_EQ(add->fusion_group(), pair);
}

TEST(FusionTest, FusedElementwiseIsDiscountedInUnitLatency)
{
    HloModule module("disc");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* a = b.Parameter(0, Shape(DType::kBF16, {256, 256}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {256, 256}));
    auto* e = b.Einsum(a, w, "mk,kn->mn");
    auto* add = b.Add(e, a);
    comp->set_root(add);
    CostModel cost{HardwareSpec{}};
    double unfused = cost.InstructionSeconds(e) +
                     cost.InstructionSeconds(add);
    ASSERT_TRUE(RunFusionPass(comp, FusionHeuristic::kDefault).ok());
    SchedGraph graph(*comp, cost);
    double fused = graph.unit_of(e)->latency;
    EXPECT_LT(fused, unfused);
    EXPECT_GT(fused, cost.InstructionSeconds(e));
}

}  // namespace
}  // namespace overlap
