#include <gtest/gtest.h>

#include "hlo/verifier.h"
#include "interp/evaluator.h"
#include "spmd/spmd_builder.h"
#include "test_util.h"

namespace overlap {
namespace {

using testing_util::ShardTensor;
using testing_util::UnshardTensor;

int64_t
CountOps(const HloComputation& comp, HloOpcode opcode)
{
    int64_t count = 0;
    for (const HloInstruction* instr : comp.instructions()) {
        if (instr->opcode() == opcode) ++count;
    }
    return count;
}

/**
 * Figure 2: 1-D strategy. Activations keep a batch shard; weights are
 * AllGathered on demand before each einsum.
 */
TEST(SpmdBuilderTest, OneDimensionalWeightGatherStrategy)
{
    Mesh mesh(4);
    HloModule module("mlp_1d");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    SpmdBuilder spmd(comp, mesh);

    const int64_t kB = 8, kF = 4, kH = 8;
    auto x = spmd.Parameter(0, Shape({kB, kF}),
                            TensorSharding::OnDim(2, 0, 0), "x");
    ASSERT_TRUE(x.ok());
    // Weight sharded along the hidden dim; must be gathered for use.
    auto w1 = spmd.Parameter(1, Shape({kF, kH}),
                             TensorSharding::OnDim(2, 1, 0), "w1");
    ASSERT_TRUE(w1.ok());
    auto w2 = spmd.Parameter(2, Shape({kH, kF}),
                             TensorSharding::OnDim(2, 0, 0), "w2");
    ASSERT_TRUE(w2.ok());

    // Desired: activations stay batch-sharded through both layers.
    auto h = spmd.Einsum(*x, *w1, "bf,fh->bh",
                         TensorSharding::OnDim(2, 0, 0));
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    auto y = spmd.Einsum(*h, *w2, "bh,hf->bf",
                         TensorSharding::OnDim(2, 0, 0));
    ASSERT_TRUE(y.ok()) << y.status().ToString();
    comp->set_root(y->local);
    ASSERT_TRUE(VerifyModule(module).ok());

    // Exactly the Figure 2 pattern: one AllGather per einsum, no
    // ReduceScatter/AllReduce in forward.
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllGather), 2);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kReduceScatter), 0);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllReduce), 0);

    // Functional check against the unpartitioned computation.
    Tensor gx = Tensor::Random(Shape({kB, kF}), 1);
    Tensor gw1 = Tensor::Random(Shape({kF, kH}), 2);
    Tensor gw2 = Tensor::Random(Shape({kH, kF}), 3);
    SpmdEvaluator eval(mesh);
    auto result = eval.Evaluate(
        *comp,
        {ShardTensor(gx, TensorSharding::OnDim(2, 0, 0), mesh),
         ShardTensor(gw1, TensorSharding::OnDim(2, 1, 0), mesh),
         ShardTensor(gw2, TensorSharding::OnDim(2, 0, 0), mesh)});
    ASSERT_TRUE(result.ok());
    Tensor hh = EinsumSpec::Parse("bf,fh->bh")->Evaluate(gx, gw1).value();
    Tensor yy = EinsumSpec::Parse("bh,hf->bf")->Evaluate(hh, gw2).value();
    Tensor assembled = UnshardTensor(
        *result, yy.shape(), TensorSharding::OnDim(2, 0, 0), mesh);
    EXPECT_TRUE(assembled.AllClose(yy, 1e-3f));
}

/**
 * Figure 3: 2-D strategy on an [M, N] torus. First einsum AllGathers the
 * activation along x and the weight along y; the second einsum contracts
 * a dimension sharded along x on both sides, producing a partial result
 * resolved by a subgroup ReduceScatter along x.
 */
TEST(SpmdBuilderTest, TwoDimensionalStrategyMatchesFigure3)
{
    Mesh mesh(2, 4);  // [M=2 (x), N=4 (y)]
    HloModule module("mlp_2d");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    SpmdBuilder spmd(comp, mesh);

    const int64_t kB = 8, kF = 4, kH = 8;
    // A0: [B/N (y), F/M (x)]
    TensorSharding act_sharding = TensorSharding::OnDims(2, 0, 1, 1, 0);
    auto x = spmd.Parameter(0, Shape({kB, kF}), act_sharding, "x");
    ASSERT_TRUE(x.ok());
    // W1: [F/N (y), H/M (x)]
    auto w1 = spmd.Parameter(1, Shape({kF, kH}),
                             TensorSharding::OnDims(2, 0, 1, 1, 0), "w1");
    ASSERT_TRUE(w1.ok());
    // W2: [H/M (x), F/N (y)]
    auto w2 = spmd.Parameter(2, Shape({kH, kF}),
                             TensorSharding::OnDims(2, 0, 0, 1, 1), "w2");
    ASSERT_TRUE(w2.ok());

    // Einsum 1 -> A1 [B/N (y), H/M (x)].
    auto h = spmd.Einsum(*x, *w1, "bf,fh->bh",
                         TensorSharding::OnDims(2, 0, 1, 1, 0));
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    // Einsum 2 -> A2 with the activation sharding again.
    auto y = spmd.Einsum(*h, *w2, "bh,hf->bf", act_sharding);
    ASSERT_TRUE(y.ok()) << y.status().ToString();
    comp->set_root(y->local);
    ASSERT_TRUE(VerifyModule(module).ok());

    // Figure 3: three AllGathers (activation x, weight y; weight y) and
    // one subgroup ReduceScatter along x.
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllGather), 3);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kReduceScatter), 1);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllReduce), 0);

    Tensor gx = Tensor::Random(Shape({kB, kF}), 4);
    Tensor gw1 = Tensor::Random(Shape({kF, kH}), 5);
    Tensor gw2 = Tensor::Random(Shape({kH, kF}), 6);
    SpmdEvaluator eval(mesh);
    auto result = eval.Evaluate(
        *comp,
        {ShardTensor(gx, act_sharding, mesh),
         ShardTensor(gw1, TensorSharding::OnDims(2, 0, 1, 1, 0), mesh),
         ShardTensor(gw2, TensorSharding::OnDims(2, 0, 0, 1, 1), mesh)});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    Tensor hh = EinsumSpec::Parse("bf,fh->bh")->Evaluate(gx, gw1).value();
    Tensor yy = EinsumSpec::Parse("bh,hf->bf")->Evaluate(hh, gw2).value();
    Tensor assembled =
        UnshardTensor(*result, yy.shape(), act_sharding, mesh);
    EXPECT_TRUE(assembled.AllClose(yy, 1e-3f));
}

TEST(SpmdBuilderTest, WeightGradientGetsReduceScatter)
{
    // Backward wgrad: contraction over the (sharded) batch produces a
    // partial gradient; asking for the weight's sharding on the output
    // yields the paper's backward ReduceScatter.
    Mesh mesh(4);
    HloModule module("wgrad");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    SpmdBuilder spmd(comp, mesh);
    const int64_t kB = 8, kF = 4, kH = 8;
    auto x = spmd.Parameter(0, Shape({kB, kF}),
                            TensorSharding::OnDim(2, 0, 0), "x");
    auto dy = spmd.Parameter(1, Shape({kB, kH}),
                             TensorSharding::OnDim(2, 0, 0), "dy");
    auto dw = spmd.Einsum(*x, *dy, "bf,bh->fh",
                          TensorSharding::OnDim(2, 1, 0));
    ASSERT_TRUE(dw.ok()) << dw.status().ToString();
    comp->set_root(dw->local);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kReduceScatter), 1);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllGather), 0);

    Tensor gx = Tensor::Random(Shape({kB, kF}), 7);
    Tensor gdy = Tensor::Random(Shape({kB, kH}), 8);
    SpmdEvaluator eval(mesh);
    auto result = eval.Evaluate(
        *comp, {ShardTensor(gx, TensorSharding::OnDim(2, 0, 0), mesh),
                ShardTensor(gdy, TensorSharding::OnDim(2, 0, 0), mesh)});
    ASSERT_TRUE(result.ok());
    Tensor expect =
        EinsumSpec::Parse("bf,bh->fh")->Evaluate(gx, gdy).value();
    Tensor assembled = UnshardTensor(*result, expect.shape(),
                                     TensorSharding::OnDim(2, 1, 0), mesh);
    EXPECT_TRUE(assembled.AllClose(expect, 1e-3f));
}

TEST(SpmdBuilderTest, ReplicatedDesiredGivesAllReduce)
{
    Mesh mesh(4);
    HloModule module("ar");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    SpmdBuilder spmd(comp, mesh);
    auto x = spmd.Parameter(0, Shape({4, 8}),
                            TensorSharding::OnDim(2, 1, 0), "x");
    auto w = spmd.Parameter(1, Shape({8, 4}),
                            TensorSharding::OnDim(2, 0, 0), "w");
    auto y = spmd.Einsum(*x, *w, "bf,fh->bh", TensorSharding::Replicated(2));
    ASSERT_TRUE(y.ok());
    comp->set_root(y->local);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllReduce), 1);
}

TEST(SpmdBuilderTest, BatchShardedBothSidesStaysLocal)
{
    Mesh mesh(2, 2);
    HloModule module("attn");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    SpmdBuilder spmd(comp, mesh);
    // Attention-score-like einsum: batch on y, heads on x, local.
    TensorSharding sharding = TensorSharding::OnDims(4, 0, 1, 1, 0);
    auto q = spmd.Parameter(0, Shape({4, 2, 6, 8}), sharding, "q");
    auto k = spmd.Parameter(1, Shape({4, 2, 6, 8}), sharding, "k");
    auto scores = spmd.Einsum(*q, *k, "bhqd,bhkd->bhqk",
                              TensorSharding::OnDims(4, 0, 1, 1, 0));
    ASSERT_TRUE(scores.ok()) << scores.status().ToString();
    comp->set_root(scores->local);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllGather), 0);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllReduce), 0);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kReduceScatter), 0);

    // Functional spot check.
    Tensor gq = Tensor::Random(Shape({4, 2, 6, 8}), 9);
    Tensor gk = Tensor::Random(Shape({4, 2, 6, 8}), 10);
    SpmdEvaluator eval(mesh);
    auto result = eval.Evaluate(*comp, {ShardTensor(gq, sharding, mesh),
                                        ShardTensor(gk, sharding, mesh)});
    ASSERT_TRUE(result.ok());
    Tensor expect = EinsumSpec::Parse("bhqd,bhkd->bhqk")
                        ->Evaluate(gq, gk)
                        .value();
    TensorSharding out_sharding = TensorSharding::OnDims(4, 0, 1, 1, 0);
    Tensor assembled =
        UnshardTensor(*result, expect.shape(), out_sharding, mesh);
    EXPECT_TRUE(assembled.AllClose(expect, 1e-3f));
}

TEST(SpmdBuilderTest, AllToAllKeepsShapes)
{
    Mesh mesh(4);
    HloModule module("a2a");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    SpmdBuilder spmd(comp, mesh);
    auto x = spmd.Parameter(0, Shape({16, 4}),
                            TensorSharding::OnDim(2, 0, 0), "tokens");
    auto moved = spmd.AllToAllDim(*x, 0, 0);
    ASSERT_TRUE(moved.ok());
    comp->set_root(moved->local);
    EXPECT_EQ(moved->local->shape().dims(), (std::vector<int64_t>{4, 4}));
    EXPECT_TRUE(VerifyModule(module).ok());
}

TEST(SpmdBuilderTest, RejectsIndivisibleSharding)
{
    Mesh mesh(4);
    HloModule module("bad");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    SpmdBuilder spmd(comp, mesh);
    auto bad = spmd.Parameter(0, Shape({6, 4}),
                              TensorSharding::OnDim(2, 0, 0), "x");
    EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace overlap
