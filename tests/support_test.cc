#include <gtest/gtest.h>

#include "support/logging.h"
#include "support/status.h"
#include "support/strings.h"

namespace overlap {
namespace {

TEST(StatusTest, OkByDefault)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kOk);
    EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage)
{
    Status s = InvalidArgument("bad shape");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad shape");
    EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
    EXPECT_EQ(FailedPrecondition("x").code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValueOrStatus)
{
    StatusOr<int> ok(42);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(*ok, 42);
    StatusOr<int> err(InvalidArgument("nope"));
    EXPECT_FALSE(err.ok());
    EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
    EXPECT_THROW(err.value(), std::logic_error);
}

TEST(StatusOrTest, ValueThrowCarriesStatusMessage)
{
    StatusOr<int> err(Internal("ring schedule corrupted"));
    try {
        err.value();
        FAIL() << "value() on an error must throw std::logic_error";
    } catch (const std::logic_error& e) {
        EXPECT_NE(std::string(e.what()).find("ring schedule corrupted"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("INTERNAL"), std::string::npos);
    }
}

#if OVERLAP_CHECKS_ENABLED
TEST(CheckTest, FailedCheckThrowsLogicErrorWithLocation)
{
    try {
        OVERLAP_CHECK(1 + 1 == 3);
        FAIL() << "OVERLAP_CHECK must throw std::logic_error on failure";
    } catch (const std::logic_error& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos);
        EXPECT_NE(what.find("support_test.cc"), std::string::npos);
    }
}
#else
TEST(CheckTest, DisabledCheckIsANoOpAndNeverEvaluates)
{
    // Release builds (no sanitizers) compile OVERLAP_CHECK out entirely:
    // no throw, and the condition expression is never evaluated.
    int evaluations = 0;
    EXPECT_NO_THROW(OVERLAP_CHECK(++evaluations > 0 && false));
    EXPECT_EQ(evaluations, 0);
}
#endif

TEST(CheckTest, PassingCheckIsSilent)
{
    EXPECT_NO_THROW(OVERLAP_CHECK(2 + 2 == 4));
}

TEST(StatusOrTest, MoveOutValue)
{
    StatusOr<std::string> s(std::string("hello"));
    std::string moved = std::move(s).value();
    EXPECT_EQ(moved, "hello");
}

TEST(StringsTest, StrJoinAndStrCat)
{
    std::vector<int> v{1, 2, 3};
    EXPECT_EQ(StrJoin(v, ","), "1,2,3");
    EXPECT_EQ(StrJoin(std::vector<int>{}, ","), "");
    EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
}

TEST(StringsTest, StrSplitKeepsEmptyFields)
{
    auto parts = StrSplit("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

TEST(StringsTest, HumanFormats)
{
    EXPECT_EQ(HumanBytes(1536.0), "1.50 KB");
    EXPECT_EQ(HumanTime(0.0015), "1.500 ms");
    EXPECT_EQ(HumanTime(2.0), "2.000 s");
    EXPECT_EQ(HumanTime(2.5e-6), "2.500 us");
    EXPECT_EQ(HumanFlops(2.4e12), "2.40 TFLOP");
}

TEST(LoggingTest, LevelGatesOutput)
{
    LogLevel old = GetLogLevel();
    SetLogLevel(LogLevel::kError);
    // No crash, message dropped below threshold.
    OVERLAP_LOG(kInfo) << "dropped";
    OVERLAP_LOG(kError) << "kept (stderr)";
    SetLogLevel(old);
    SUCCEED();
}

}  // namespace
}  // namespace overlap
