/**
 * @file
 * Zero-allocation regression gate (DESIGN.md §12/§13): once the buffer
 * pool is warm, re-evaluating a decomposed-loop program must perform
 * no fresh tensor heap allocations — every intermediate is served from
 * the pool. A regression here (a new untracked allocation site, a
 * shape that misses its bucket) shows up as a nonzero delta in
 * TensorHeapAllocCount, the same counter the perf baseline reports.
 */
#include <gtest/gtest.h>

#include "core/overlap_compiler.h"
#include "difftest/difftest.h"
#include "interp/evaluator.h"
#include "tensor/buffer_pool.h"

namespace overlap {
namespace {

using difftest::BuildSiteScenario;
using difftest::SiteCase;
using difftest::SiteSpec;

SiteSpec
SmallDecomposedSpec(SiteCase site_case)
{
    SiteSpec spec;
    spec.site_case = site_case;
    spec.mesh_dims = {4};
    spec.shard_extent = 4;
    spec.free0 = 3;
    spec.free1 = 5;
    spec.contract = 8;
    spec.data_seed = 13;
    return spec;
}

TEST(AllocRegressionTest, WarmPoolEvaluationAllocatesNothing)
{
    BufferPool& pool = ThreadLocalBufferPool();
    const bool was_enabled = pool.enabled();
    pool.set_enabled(true);

    const SiteCase kCases[] = {
        SiteCase::kAllGatherFree,
        SiteCase::kAllGatherContracting,
        SiteCase::kAllGatherBatch,
        SiteCase::kReduceScatter,
    };
    for (SiteCase site_case : kCases) {
        SiteSpec spec = SmallDecomposedSpec(site_case);
        auto scenario = BuildSiteScenario(spec);
        ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();

        CompilerOptions options;
        options.decompose.use_cost_model = false;  // force the loop
        OverlapCompiler compiler(options);
        auto report = compiler.Compile(scenario->module.get());
        ASSERT_TRUE(report.ok()) << report.status().ToString();
        ASSERT_GT(report->decompose.total_decomposed(), 0)
            << spec.ToString();

        SpmdEvaluator eval(spec.mesh());
        const HloComputation& comp = *scenario->module->entry();

        // Warm-up populates the pool with every shape the program
        // needs; from then on each iteration must run heap-free. The
        // outputs go back via Recycle — a plain destructor frees the
        // buffer outside the pool and would drain the output bucket
        // once per iteration.
        auto warm = eval.Evaluate(comp, scenario->params);
        ASSERT_TRUE(warm.ok()) << warm.status().ToString();
        for (Tensor& t : *warm) Tensor::Recycle(std::move(t));

        pool.ResetStats();
        const int64_t before = TensorHeapAllocCount();
        constexpr int kIters = 3;
        for (int i = 0; i < kIters; ++i) {
            auto r = eval.Evaluate(comp, scenario->params);
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            for (Tensor& t : *r) Tensor::Recycle(std::move(t));
        }
        const int64_t allocs = TensorHeapAllocCount() - before;
        EXPECT_EQ(allocs, 0)
            << spec.ToString() << ": " << allocs
            << " fresh tensor heap allocations across " << kIters
            << " warm evaluations; pool stats "
            << pool.stats().ToString();
        EXPECT_GT(pool.stats().hits, 0) << spec.ToString();
    }

    pool.set_enabled(was_enabled);
}

TEST(AllocRegressionTest, DisabledPoolStillCountsAllocations)
{
    // The counter itself must move when pooling is off — otherwise the
    // zero above could be a dead counter rather than a working pool.
    BufferPool& pool = ThreadLocalBufferPool();
    const bool was_enabled = pool.enabled();
    pool.set_enabled(false);
    pool.Clear();

    SiteSpec spec = SmallDecomposedSpec(SiteCase::kAllGatherFree);
    auto scenario = BuildSiteScenario(spec);
    ASSERT_TRUE(scenario.ok());
    CompilerOptions options;
    options.decompose.use_cost_model = false;
    OverlapCompiler compiler(options);
    ASSERT_TRUE(compiler.Compile(scenario->module.get()).ok());
    SpmdEvaluator eval(spec.mesh());

    const int64_t before = TensorHeapAllocCount();
    auto r = eval.Evaluate(*scenario->module->entry(), scenario->params);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(TensorHeapAllocCount() - before, 0);

    pool.set_enabled(was_enabled);
}

}  // namespace
}  // namespace overlap
