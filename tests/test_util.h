#ifndef OVERLAP_TESTS_TEST_UTIL_H_
#define OVERLAP_TESTS_TEST_UTIL_H_

#include <vector>

#include "tensor/mesh.h"
#include "tensor/sharding.h"
#include "tensor/tensor.h"

namespace overlap {
namespace testing_util {

/** Splits a global tensor into one shard per device of `mesh`. */
inline std::vector<Tensor>
ShardTensor(const Tensor& global, const TensorSharding& sharding,
            const Mesh& mesh)
{
    std::vector<Tensor> shards;
    shards.reserve(static_cast<size_t>(mesh.num_devices()));
    Shape shard_shape = sharding.ShardShape(global.shape(), mesh);
    for (int64_t d = 0; d < mesh.num_devices(); ++d) {
        std::vector<int64_t> offsets =
            sharding.ShardOffsets(global.shape(), mesh, d);
        shards.push_back(global.Slice(offsets, shard_shape.dims()));
    }
    return shards;
}

/** Reassembles per-device shards into the global tensor. */
inline Tensor
UnshardTensor(const std::vector<Tensor>& shards, const Shape& global_shape,
              const TensorSharding& sharding, const Mesh& mesh)
{
    Tensor global(global_shape);
    for (int64_t d = 0; d < mesh.num_devices(); ++d) {
        global = global.UpdateSlice(
            shards[static_cast<size_t>(d)],
            sharding.ShardOffsets(global_shape, mesh, d));
    }
    return global;
}

}  // namespace testing_util
}  // namespace overlap

#endif  // OVERLAP_TESTS_TEST_UTIL_H_
