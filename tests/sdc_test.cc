/**
 * @file
 * Silent-data-corruption detection, localization and containment
 * (DESIGN.md §16): checksum/ABFT primitives, evaluator-level injection
 * and detection (identical across serial and concurrent modes), the
 * simulator's detector accounting, the elastic containment loop
 * (rollback to a bit-identical state, repeat-offender quarantine) and
 * the service's rejected-never-emitted path.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "core/pod_runner.h"
#include "core/recovery/step_program.h"
#include "core/service/pod_service.h"
#include "interp/comparison.h"
#include "models/fault_presets.h"
#include "sim/engine.h"
#include "tensor/checksum.h"

namespace overlap {
namespace {

/** Spec whose padded extents decompose on both 4- and 3-rings. */
ElasticProgramSpec
SmallSpec()
{
    ElasticProgramSpec spec;
    spec.logical_rows = 8;
    spec.feature = 4;
    spec.data_seed = 77;
    return spec;
}

/** Overlap compiler forced to decompose (the sites are tiny). */
CompilerOptions
ForcedOverlapOptions()
{
    CompilerOptions options;
    options.decompose.use_cost_model = false;
    return options;
}

SdcDetectorConfig
DetectorsOn()
{
    SdcDetectorConfig detectors;
    detectors.enabled = true;
    return detectors;
}

// ---- Primitives -----------------------------------------------------

TEST(ChecksumTest, PayloadChecksumIsExactOnBitPatterns)
{
    Tensor t = Tensor::Random(Shape({6, 5}), 3);
    const uint64_t clean = PayloadChecksum(t);
    EXPECT_EQ(clean, PayloadChecksum(t));  // deterministic

    // Any single-bit difference changes the hash — including the
    // lowest mantissa bit and the sign of zero, which tolerance-based
    // comparisons would wave through.
    Tensor flipped = t;
    uint32_t bits = 0;
    std::memcpy(&bits, &flipped.values()[7], sizeof(bits));
    bits ^= 1u;
    std::memcpy(&flipped.values()[7], &bits, sizeof(bits));
    EXPECT_NE(clean, PayloadChecksum(flipped));

    Tensor zeros(Shape({2, 2}));
    Tensor negzeros(Shape({2, 2}));
    for (float& v : negzeros.values()) v = -0.0f;
    EXPECT_NE(PayloadChecksum(zeros), PayloadChecksum(negzeros));
}

TEST(ChecksumTest, BytesChecksumCatchesEveryBytePosition)
{
    std::vector<uint8_t> bytes(64);
    for (size_t i = 0; i < bytes.size(); ++i) {
        bytes[i] = static_cast<uint8_t>(i * 7);
    }
    const uint64_t clean = BytesChecksum(bytes.data(), bytes.size());
    for (size_t i = 0; i < bytes.size(); ++i) {
        bytes[i] ^= 0x01;
        EXPECT_NE(clean, BytesChecksum(bytes.data(), bytes.size()))
            << "flip at byte " << i << " not detected";
        bytes[i] ^= 0x01;
    }
    EXPECT_EQ(clean, BytesChecksum(bytes.data(), bytes.size()));
}

TEST(ChecksumTest, AbftCadenceUsesAGlobalCounterAcrossSteps)
{
    // Cadence 1 (the default) checks everything.
    for (int64_t step = 0; step < 3; ++step) {
        for (int64_t ordinal = 0; ordinal < 3; ++ordinal) {
            EXPECT_TRUE(AbftChecked(step, ordinal, 3, 1));
        }
    }
    // Cadence 3 over 2 einsums/step: the checked global indices are
    // 0, 3, 6, ... — the checked *ordinal* rotates across steps instead
    // of re-checking ordinal 0 every step.
    EXPECT_TRUE(AbftChecked(0, 0, 2, 3));   // global 0
    EXPECT_FALSE(AbftChecked(0, 1, 2, 3));  // global 1
    EXPECT_FALSE(AbftChecked(1, 0, 2, 3));  // global 2
    EXPECT_TRUE(AbftChecked(1, 1, 2, 3));   // global 3
    EXPECT_FALSE(AbftChecked(2, 0, 2, 3));  // global 4
    EXPECT_FALSE(AbftChecked(2, 1, 2, 3));  // global 5
    EXPECT_TRUE(AbftChecked(3, 0, 2, 3));   // global 6
}

TEST(ChecksumTest, AbftVerifiesCleanEinsumAndCatchesCorruption)
{
    auto spec = EinsumSpec::Parse("ij,jk->ik");
    ASSERT_TRUE(spec.ok());
    Tensor lhs = Tensor::Random(Shape({4, 3}), 11);
    Tensor rhs = Tensor::Random(Shape({3, 5}), 12);
    auto out = spec->Evaluate(lhs, rhs);
    ASSERT_TRUE(out.ok());

    auto clean = AbftVerifyEinsum(*spec, lhs, rhs, *out, 1e-4);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    EXPECT_TRUE(clean->ok);
    EXPECT_LE(clean->max_residual, clean->tolerance);

    // A bit-30 flip moves the element by >= 2.0 — far over tolerance.
    SilentCorruption flip;
    flip.element = 9;
    Tensor corrupted = *out;
    ApplyCorruption(flip, &corrupted);
    auto caught = AbftVerifyEinsum(*spec, lhs, rhs, corrupted, 1e-4);
    ASSERT_TRUE(caught.ok());
    EXPECT_FALSE(caught->ok);
    EXPECT_GT(caught->max_residual, caught->tolerance);

    // A value perturbation at the default magnitude is caught too.
    SilentCorruption perturb;
    perturb.kind = CorruptionKind::kValuePerturbation;
    perturb.element = 2;
    corrupted = *out;
    ApplyCorruption(perturb, &corrupted);
    caught = AbftVerifyEinsum(*spec, lhs, rhs, corrupted, 1e-4);
    ASSERT_TRUE(caught.ok());
    EXPECT_FALSE(caught->ok);
}

TEST(ChecksumTest, ApplyCorruptionWrapsTheElementIndex)
{
    Tensor t(Shape({2, 2}));
    SilentCorruption c;
    c.element = 4 + 1;  // mod 4 -> element 1
    ApplyCorruption(c, &t);
    EXPECT_EQ(t.values()[1], 2.0f);  // 0.0 with bit 30 set is 2.0
    EXPECT_EQ(t.values()[0], 0.0f);
}

// ---- Evaluator: inject, detect, localize ----------------------------

struct EvalRun {
    Status status;
    SdcEvalSink sink;
    Tensor state_before;
    Tensor state_after;
};

/**
 * One advance of the elastic step under the given SDC config. Fills
 * `run` in place (the sink owns a mutex, so EvalRun is not movable).
 */
void
AdvanceWithSdc(const SilentCorruption* corruption, bool concurrent,
               EvalRun* run)
{
    auto program =
        BuildElasticProgram(SmallSpec(), Mesh(4), ForcedOverlapOptions(),
                            InitialElasticState(SmallSpec()));
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    run->state_before = *LogicalElasticState(*program);

    SdcEvalConfig sdc;
    sdc.detectors = DetectorsOn();
    sdc.step = 0;
    if (corruption != nullptr) sdc.corruptions.push_back(*corruption);
    EvalOptions options;
    options.concurrent_devices = concurrent;
    options.sdc = &sdc;
    options.sdc_sink = &run->sink;
    run->status = AdvanceElasticState(&program.value(), options);
    run->state_after = *LogicalElasticState(*program);
}

TEST(EvaluatorSdcTest, AbftDetectsAndLocalizesEinsumCorruption)
{
    SilentCorruption c;
    c.step = 0;
    c.chip = 1;
    c.instruction = 0;
    c.target = CorruptionTarget::kEinsumOutput;
    EvalRun run;
    AdvanceWithSdc(&c, /*concurrent=*/false, &run);

    ASSERT_FALSE(run.status.ok());
    EXPECT_EQ(run.status.code(), StatusCode::kFailedPrecondition);
    ASSERT_TRUE(run.sink.detected());
    auto primary = run.sink.Primary();
    ASSERT_TRUE(primary.has_value());
    EXPECT_EQ(primary->detector, CorruptionDetector::kEinsumAbft);
    EXPECT_EQ(primary->chip, 1);
    EXPECT_EQ(primary->instruction, 0);
    EXPECT_GT(primary->residual, 0.0);

    // Containment at the data level: the aborted advance left the
    // state bitwise untouched.
    OutputComparison cmp = CompareOutputs({run.state_before},
                                          {run.state_after}, 0.0);
    EXPECT_TRUE(cmp.equal) << cmp.ToString();
}

TEST(EvaluatorSdcTest, TransferChecksumCatchesPayloadCorruption)
{
    SilentCorruption c;
    c.step = 0;
    c.chip = 2;
    c.instruction = 0;
    c.target = CorruptionTarget::kTransferPayload;
    EvalRun run;
    AdvanceWithSdc(&c, /*concurrent=*/false, &run);

    ASSERT_FALSE(run.status.ok());
    auto primary = run.sink.Primary();
    ASSERT_TRUE(primary.has_value());
    EXPECT_EQ(primary->detector, CorruptionDetector::kTransferChecksum);
    EXPECT_EQ(primary->chip, 2);
}

TEST(EvaluatorSdcTest, PrimaryReportIsModeIndependent)
{
    SilentCorruption c;
    c.step = 0;
    c.chip = 3;
    c.instruction = 0;
    for (auto target : {CorruptionTarget::kEinsumOutput,
                        CorruptionTarget::kTransferPayload}) {
        c.target = target;
        EvalRun serial;
        EvalRun threaded;
        AdvanceWithSdc(&c, /*concurrent=*/false, &serial);
        AdvanceWithSdc(&c, /*concurrent=*/true, &threaded);
        ASSERT_FALSE(serial.status.ok());
        ASSERT_FALSE(threaded.status.ok());
        auto a = serial.sink.Primary();
        auto b = threaded.sink.Primary();
        ASSERT_TRUE(a.has_value());
        ASSERT_TRUE(b.has_value());
        // The earliest report in (program index, device) order is the
        // deterministic cross-mode contract.
        EXPECT_EQ(a->chip, b->chip);
        EXPECT_EQ(a->instruction, b->instruction);
        EXPECT_EQ(a->detector, b->detector);
        EXPECT_EQ(a->program_index, b->program_index);
    }
}

TEST(EvaluatorSdcTest, CleanRunWithDetectorsOnIsBitIdenticalAndSilent)
{
    EvalRun checked;
    AdvanceWithSdc(nullptr, /*concurrent=*/false, &checked);
    ASSERT_TRUE(checked.status.ok()) << checked.status.ToString();
    EXPECT_FALSE(checked.sink.detected());  // zero false positives
    EXPECT_TRUE(checked.sink.reports().empty());

    // The detectors only observe: the advanced state is bitwise equal
    // to an advance with no SDC machinery at all.
    auto program =
        BuildElasticProgram(SmallSpec(), Mesh(4), ForcedOverlapOptions(),
                            InitialElasticState(SmallSpec()));
    ASSERT_TRUE(program.ok());
    ASSERT_TRUE(AdvanceElasticState(&program.value()).ok());
    auto plain = LogicalElasticState(*program);
    ASSERT_TRUE(plain.ok());
    OutputComparison cmp =
        CompareOutputs({*plain}, {checked.state_after}, 0.0);
    EXPECT_TRUE(cmp.equal) << cmp.ToString();
}

// ---- Simulator: detector accounting and step outcome ----------------

TEST(EngineSdcTest, DetectionFillsOutcomeAndChargesDetectorTime)
{
    ElasticProgramSpec spec = SmallSpec();
    Mesh mesh(4);
    CompilerOptions options = ForcedOverlapOptions();
    options.fault = SdcCompute(/*chip=*/1, /*step=*/0).spec;
    auto program = BuildElasticProgram(spec, mesh, options,
                                       InitialElasticState(spec));
    ASSERT_TRUE(program.ok());
    PodSimulator simulator(mesh, options.hardware,
                           FaultModel(options.fault));
    auto outcome = simulator.RunStep(*program->module, /*step_index=*/0);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

    EXPECT_FALSE(outcome->failed);  // corruption crashes nothing
    EXPECT_TRUE(outcome->sdc_injected);
    EXPECT_TRUE(outcome->corrupted);
    EXPECT_FALSE(outcome->sdc_escaped);
    EXPECT_EQ(outcome->corruption.chip, 1);
    EXPECT_EQ(outcome->corruption.detector,
              CorruptionDetector::kEinsumAbft);
    EXPECT_GT(outcome->corruption_detected_at_seconds, 0.0);
    EXPECT_LE(outcome->corruption_detected_at_seconds,
              outcome->result.step_seconds);
    EXPECT_GT(outcome->result.detector_seconds, 0.0);
    EXPECT_GT(outcome->result.num_abft_checks, 0);
    EXPECT_GT(outcome->result.num_transfer_checksums, 0);

    // Run() has no containment loop: corruption surfaces as an error.
    auto run = simulator.Run(*program->module);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineSdcTest, TransferCorruptionIsCaughtInFlight)
{
    ElasticProgramSpec spec = SmallSpec();
    Mesh mesh(4);
    CompilerOptions options = ForcedOverlapOptions();
    options.fault = SdcTransfer(/*chip=*/2, /*step=*/0).spec;
    auto program = BuildElasticProgram(spec, mesh, options,
                                       InitialElasticState(spec));
    ASSERT_TRUE(program.ok());
    PodSimulator simulator(mesh, options.hardware,
                           FaultModel(options.fault));
    auto outcome = simulator.RunStep(*program->module, /*step_index=*/0);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->corrupted);
    EXPECT_EQ(outcome->corruption.detector,
              CorruptionDetector::kTransferChecksum);
    EXPECT_EQ(outcome->corruption.chip, 2);
}

TEST(EngineSdcTest, DetectorsOffEscapesWithUnchangedTiming)
{
    ElasticProgramSpec spec = SmallSpec();
    Mesh mesh(4);
    CompilerOptions healthy = ForcedOverlapOptions();
    auto program = BuildElasticProgram(spec, mesh, healthy,
                                       InitialElasticState(spec));
    ASSERT_TRUE(program.ok());
    auto baseline = PodSimulator(mesh, healthy.hardware, FaultModel())
                        .Run(*program->module);
    ASSERT_TRUE(baseline.ok());

    CompilerOptions blind = ForcedOverlapOptions();
    blind.fault = SdcUndetected(/*chip=*/1, /*step=*/0).spec;
    PodSimulator simulator(mesh, blind.hardware,
                           FaultModel(blind.fault));
    auto outcome = simulator.RunStep(*program->module, /*step_index=*/0);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->sdc_injected);
    EXPECT_TRUE(outcome->sdc_escaped);
    EXPECT_FALSE(outcome->corrupted);
    // No detectors -> no detector time, and the step is bit-identical
    // in timing to the healthy run (detection is opt-in).
    EXPECT_EQ(outcome->result.detector_seconds, 0.0);
    EXPECT_EQ(outcome->result.num_abft_checks, 0);
    EXPECT_EQ(outcome->result.num_transfer_checksums, 0);
    EXPECT_EQ(outcome->result.step_seconds, baseline->step_seconds);
}

// ---- Elastic containment: detect -> rollback -> replay --------------

StatusOr<ElasticRunReport>
RunElastic(const FaultSpec& fault, int64_t num_steps = 6)
{
    ElasticRunOptions options;
    options.num_steps = num_steps;
    options.checkpoint_interval = 2;
    options.program = SmallSpec();
    options.compiler = ForcedOverlapOptions();
    options.compiler.fault = fault;
    return RunElasticTraining(Mesh(4), options);
}

TEST(ContainmentTest, DetectedCorruptionRollsBackToBitIdenticalState)
{
    auto clean = RunElastic(FaultSpec());
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    ASSERT_EQ(clean->sdc.detected, 0);

    for (const FaultScenario& scenario :
         {SdcCompute(/*chip=*/1, /*step=*/3),
          SdcTransfer(/*chip=*/1, /*step=*/3)}) {
        auto report = RunElastic(scenario.spec);
        ASSERT_TRUE(report.ok())
            << scenario.name << ": " << report.status().ToString();
        EXPECT_GE(report->sdc.detected, 1) << scenario.name;
        EXPECT_EQ(report->sdc.escaped, 0) << scenario.name;
        EXPECT_GE(report->sdc.rollbacks, 1) << scenario.name;
        EXPECT_GT(report->sdc.replayed_steps, 0) << scenario.name;
        EXPECT_GT(report->sdc.detection_latency_seconds, 0.0);
        EXPECT_GT(report->sdc.rollback_seconds, 0.0);
        EXPECT_FALSE(report->sdc.quarantined);
        EXPECT_FALSE(report->sdc.last_report.empty());
        EXPECT_EQ(report->final_mesh.num_devices(), 4);
        // Recovery cost is real simulated time, never free.
        EXPECT_GT(report->total_seconds, 0.0);

        // The tentpole guarantee: the recovered run ends in a state
        // *bitwise* equal to the never-corrupted run — rollback went to
        // a clean checkpoint and the replay consumed the injection.
        OutputComparison cmp = CompareOutputs(
            {clean->final_state}, {report->final_state}, 0.0);
        EXPECT_TRUE(cmp.equal) << scenario.name << ": " << cmp.ToString();
    }
}

TEST(ContainmentTest, RepeatOffenderIsQuarantinedOntoSurvivorMesh)
{
    // Chip 1 corrupts twice (the second injection lands after the
    // first rollback's replay): with the default strike limit of 2 the
    // second detection quarantines it like a dead chip.
    FaultSpec fault = SdcCompute(/*chip=*/1, /*step=*/3).spec;
    SilentCorruption again;
    again.step = 5;
    again.chip = 1;
    fault.silent_corruptions.push_back(again);

    const int64_t num_steps = 8;
    auto report = RunElastic(fault, num_steps);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GE(report->sdc.detected, 2);
    EXPECT_EQ(report->sdc.escaped, 0);
    EXPECT_TRUE(report->sdc.quarantined);
    EXPECT_EQ(report->sdc.quarantined_chip, 1);
    EXPECT_EQ(report->final_mesh.num_devices(), 3);

    // The finish on the survivor ring re-ran the §5.5 gate; the final
    // state matches a clean full-mesh run within decomposition
    // reassociation tolerance (ring 3 re-pads 8 -> 9 rows).
    auto clean = RunElastic(FaultSpec(), num_steps);
    ASSERT_TRUE(clean.ok());
    double tolerance =
        EquivalenceTolerance(DType::kF32,
                             PaddedRows(SmallSpec().logical_rows, 4)) *
        static_cast<double>(num_steps);
    OutputComparison cmp = CompareOutputs(
        {clean->final_state}, {report->final_state}, tolerance);
    EXPECT_TRUE(cmp.equal) << cmp.ToString();
}

TEST(ContainmentTest, EscapedCorruptionIsCountedAndPoisonsState)
{
    auto clean = RunElastic(FaultSpec());
    ASSERT_TRUE(clean.ok());
    auto blind = RunElastic(SdcUndetected(/*chip=*/1, /*step=*/3).spec);
    ASSERT_TRUE(blind.ok()) << blind.status().ToString();
    EXPECT_EQ(blind->sdc.detected, 0);
    EXPECT_GE(blind->sdc.escaped, 1);
    EXPECT_EQ(blind->sdc.rollbacks, 0);
    // The poisoned state propagated to the final value — exactly what
    // the detectors exist to prevent.
    OutputComparison cmp = CompareOutputs(
        {clean->final_state}, {blind->final_state}, 0.0);
    EXPECT_FALSE(cmp.equal);
}

// ---- Service: rejected, never emitted -------------------------------

ServiceOptions
LightServiceOptions()
{
    ServiceOptions options;
    options.arrivals.seed = 21;
    options.arrivals.duration_seconds = 0.05;
    options.arrivals.inference_rate_hz = 1000.0;
    options.arrivals.training_rate_hz = 400.0;
    options.arrivals.inference_slo_seconds = 0.05;
    return options;
}

TEST(ServiceSdcTest, CorruptedResponseIsRejectedNeverEmitted)
{
    ServiceOptions options = LightServiceOptions();
    options.compiler.fault = SdcCompute(/*chip=*/1, /*step=*/3).spec;
    auto report = PodService(Mesh(4), options).Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    EXPECT_GE(report->corruption_detections, 1);
    EXPECT_GE(report->inference.corrupted_rejected +
                  report->training.corrupted_rejected,
              1);
    // The rejected request is a terminal bucket: the conservation laws
    // still close — nothing corrupted was silently emitted or lost.
    EXPECT_TRUE(report->inference.Consistent());
    EXPECT_TRUE(report->training.Consistent());
    EXPECT_FALSE(report->sdc_quarantined);
    EXPECT_EQ(report->final_mesh.num_devices(), 4);
    EXPECT_NE(report->ToJson().find("\"corrupted_rejected\""),
              std::string::npos);
}

TEST(ServiceSdcTest, StrikeLimitQuarantinesTheChipUnderLoad)
{
    ServiceOptions options = LightServiceOptions();
    options.compiler.fault = SdcCompute(/*chip=*/1, /*step=*/3).spec;
    SilentCorruption again;
    again.step = 8;
    again.chip = 1;
    options.compiler.fault.silent_corruptions.push_back(again);

    auto report = PodService(Mesh(4), options).Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GE(report->corruption_detections, 2);
    EXPECT_TRUE(report->sdc_quarantined);
    EXPECT_EQ(report->sdc_quarantined_chip, 1);
    // Quarantine rode the regular recovery path onto the survivor mesh.
    ASSERT_GE(report->recoveries.size(), 1u);
    EXPECT_EQ(report->final_mesh.num_devices(), 3);
    EXPECT_TRUE(report->inference.Consistent());
    EXPECT_TRUE(report->training.Consistent());
    EXPECT_FALSE(report->overloaded);
}

}  // namespace
}  // namespace overlap
