/**
 * @file
 * Targeted tests for the less-travelled branches: the SpmdBuilder's
 * output-resharding fixups, the §5.5 candidate-preference rule, and
 * assorted edge cases of the passes.
 */
#include <gtest/gtest.h>

#include "hlo/builder.h"
#include "hlo/verifier.h"
#include "interp/evaluator.h"
#include "passes/decompose.h"
#include "spmd/spmd_builder.h"
#include "test_util.h"

namespace overlap {
namespace {

using testing_util::ShardTensor;
using testing_util::UnshardTensor;

int64_t
CountOps(const HloComputation& comp, HloOpcode opcode)
{
    int64_t count = 0;
    for (const HloInstruction* instr : comp.instructions()) {
        if (instr->opcode() == opcode) ++count;
    }
    return count;
}

TEST(SpmdPhase4Test, OutputAllGatherWhenDesiredReplicated)
{
    // Operand free dim is sharded but the caller wants the output
    // replicated on it: the builder gathers the operand up front, so no
    // output fixup and no residual sharding.
    Mesh mesh(4);
    HloModule module("m");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    SpmdBuilder spmd(comp, mesh);
    auto x = spmd.Parameter(0, Shape({4, 8}), TensorSharding::Replicated(2),
                            "x");
    auto w = spmd.Parameter(1, Shape({8, 8}),
                            TensorSharding::OnDim(2, 1, 0), "w");
    auto y = spmd.Einsum(*x, *w, "bf,fh->bh",
                         TensorSharding::Replicated(2));
    ASSERT_TRUE(y.ok()) << y.status().ToString();
    comp->set_root(y->local);
    EXPECT_TRUE(y->sharding.IsReplicated());
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllGather), 1);

    Tensor gx = Tensor::Random(Shape({4, 8}), 1);
    Tensor gw = Tensor::Random(Shape({8, 8}), 2);
    SpmdEvaluator eval(mesh);
    auto result = eval.Evaluate(
        *comp, {{gx}, ShardTensor(gw, TensorSharding::OnDim(2, 1, 0),
                                  mesh)});
    ASSERT_TRUE(result.ok());
    Tensor expect =
        EinsumSpec::Parse("bf,fh->bh")->Evaluate(gx, gw).value();
    EXPECT_TRUE((*result)[0].AllClose(expect, 1e-3f));
    EXPECT_TRUE((*result)[3].AllClose(expect, 1e-3f));
}

TEST(SpmdPhase4Test, LocalSliceWhenDesiredShardedButComputedFull)
{
    // Neither operand is sharded on the output's batch dim, but the
    // caller wants it sharded: the builder slices locally (no
    // communication at all).
    Mesh mesh(4);
    HloModule module("m");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    SpmdBuilder spmd(comp, mesh);
    auto x = spmd.Parameter(0, Shape({8, 8}), TensorSharding::Replicated(2),
                            "x");
    auto w = spmd.Parameter(1, Shape({8, 4}),
                            TensorSharding::Replicated(2), "w");
    auto y =
        spmd.Einsum(*x, *w, "bf,fh->bh", TensorSharding::OnDim(2, 0, 0));
    ASSERT_TRUE(y.ok()) << y.status().ToString();
    comp->set_root(y->local);
    EXPECT_EQ(y->sharding.axis_for_dim(0), 0);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllGather), 0);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllReduce), 0);
    EXPECT_GE(CountOps(*comp, HloOpcode::kDynamicSlice), 1);

    Tensor gx = Tensor::Random(Shape({8, 8}), 3);
    Tensor gw = Tensor::Random(Shape({8, 4}), 4);
    SpmdEvaluator eval(mesh);
    auto result = eval.Evaluate(*comp, {{gx}, {gw}});
    ASSERT_TRUE(result.ok());
    Tensor expect =
        EinsumSpec::Parse("bf,fh->bh")->Evaluate(gx, gw).value();
    Tensor assembled = UnshardTensor(*result, expect.shape(),
                                     TensorSharding::OnDim(2, 0, 0), mesh);
    EXPECT_TRUE(assembled.AllClose(expect, 1e-3f));
}

TEST(SpmdPhase4Test, FreeLabelAxisChangeBecomesGatherThenSlice)
{
    // Operand free dim sharded on x, output wanted on y: the builder
    // gathers the operand and slices the result locally — a legitimate
    // (if communication-heavy) reshard.
    Mesh mesh(2, 2);
    HloModule module("m");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    SpmdBuilder spmd(comp, mesh);
    auto x = spmd.Parameter(0, Shape({4, 8}),
                            TensorSharding::OnDim(2, 0, 0), "x");
    auto w = spmd.Parameter(1, Shape({8, 4}),
                            TensorSharding::Replicated(2), "w");
    auto y =
        spmd.Einsum(*x, *w, "bf,fh->bh", TensorSharding::OnDim(2, 0, 1));
    ASSERT_TRUE(y.ok()) << y.status().ToString();
    comp->set_root(y->local);
    EXPECT_EQ(y->sharding.axis_for_dim(0), 1);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllGather), 1);
    EXPECT_GE(CountOps(*comp, HloOpcode::kDynamicSlice), 1);
}

TEST(SpmdPhase4Test, BatchAxisChangeIsUnimplemented)
{
    // Both operands batch-sharded on x, output wanted on y: a true
    // axis-to-axis reshard of an already-sharded output dim, declined.
    Mesh mesh(2, 2);
    HloModule module("m");
    module.set_mesh(mesh);
    SpmdBuilder spmd(module.AddEntryComputation("main"), mesh);
    auto x = spmd.Parameter(0, Shape({4, 8}),
                            TensorSharding::OnDim(2, 0, 0), "x");
    auto w = spmd.Parameter(1, Shape({4, 6}),
                            TensorSharding::OnDim(2, 0, 0), "w");
    auto y = spmd.Einsum(*x, *w, "bf,bh->bfh",
                         TensorSharding::OnDim(3, 0, 1));
    ASSERT_FALSE(y.ok());
    EXPECT_EQ(y.status().code(), StatusCode::kUnimplemented);
}

TEST(CandidateSelectionTest, PrefersTheMoreExpensiveCollective)
{
    // §5.5: an einsum with an activation AllGather (large transfer) and
    // a weight AllGather (small transfer) decomposes the activation one.
    Mesh mesh(4);
    HloModule module("m");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    // Activation shard: large. Weight shard: small.
    auto* act = b.Parameter(0, Shape(DType::kBF16, {2048, 8192}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {2048, 1024}));
    auto* big_ag = b.AllGather(act, 0, mesh.Groups(0));   // 8192 rows
    auto* small_ag = b.AllGather(w, 0, mesh.Groups(0));   // contracting
    comp->set_root(b.Einsum(big_ag, small_ag, "bf,fh->bh"));
    CostModel cost{HardwareSpec{}};
    DecomposeOptions options;
    options.use_cost_model = false;
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    auto stats = decomposer.Run(comp);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->allgather_sites, 1);
    // The surviving blocking AllGather must be the small (weight) one.
    for (const HloInstruction* instr : comp->instructions()) {
        if (instr->opcode() == HloOpcode::kAllGather) {
            EXPECT_EQ(instr->operand(0)->shape().dim(1), 1024);
        }
    }
}

TEST(DecomposeEdgeTest, SingleDeviceAxisLeftAlone)
{
    Mesh mesh(1, 4);
    HloModule module("m");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {8, 16}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {16, 8}));
    // Groups along the size-1 x axis: nothing to decompose.
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(ag, w, "bf,fh->bh"));
    CostModel cost{HardwareSpec{}};
    DecomposeOptions options;
    options.use_cost_model = false;
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    auto stats = decomposer.Run(comp);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->total_decomposed(), 0);
}

TEST(DecomposeEdgeTest, OddShardExtentAtTwoPartitionsFallsBackToUni)
{
    // N == 2 two-way exchange needs an even shard extent; odd extents
    // use the unidirectional loop and stay correct.
    Mesh mesh(2);
    HloModule module("m");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({3, 4}));  // odd shard extent
    auto* w = b.Parameter(1, Shape({4, 5}));
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(ag, w, "bf,fh->bh"));
    CostModel cost{HardwareSpec{}};
    DecomposeOptions options;
    options.use_cost_model = false;
    options.bidirectional = true;
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    ASSERT_TRUE(decomposer.Run(comp).ok());
    EXPECT_EQ(CountOps(*comp, HloOpcode::kCollectivePermute), 1);

    Tensor ga = Tensor::Random(Shape({6, 4}), 9);
    Tensor gw = Tensor::Random(Shape({4, 5}), 10);
    SpmdEvaluator eval(mesh);
    auto result = eval.Evaluate(
        *comp,
        {ShardTensor(ga, TensorSharding::OnDim(2, 0, 0), mesh), {gw}});
    ASSERT_TRUE(result.ok());
    Tensor expect =
        EinsumSpec::Parse("bf,fh->bh")->Evaluate(ga, gw).value();
    EXPECT_TRUE((*result)[0].AllClose(expect, 1e-3f));
    EXPECT_TRUE((*result)[1].AllClose(expect, 1e-3f));
}

}  // namespace
}  // namespace overlap
