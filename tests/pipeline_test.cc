#include <gtest/gtest.h>

#include "core/overlap_compiler.h"
#include "core/pod_runner.h"
#include "hlo/verifier.h"
#include "interp/evaluator.h"
#include "models/step_builder.h"
#include "spmd/spmd_builder.h"
#include "test_util.h"

namespace overlap {
namespace {

using testing_util::ShardTensor;
using testing_util::UnshardTensor;

/**
 * Builds a small two-layer MLP per-device program (Figure 3 pattern)
 * suitable for functional interpretation.
 */
struct MlpProgram {
    std::unique_ptr<HloModule> module;
    std::vector<std::vector<Tensor>> params;
    Tensor expected;               // global output
    TensorSharding out_sharding;
};

MlpProgram
BuildSmallMlp(const Mesh& mesh)
{
    MlpProgram p;
    p.module = std::make_unique<HloModule>("mlp");
    p.module->set_mesh(mesh);
    HloComputation* comp = p.module->AddEntryComputation("main");
    SpmdBuilder spmd(comp, mesh);

    const int64_t kB = 8, kF = 8, kH = 16;
    TensorSharding act_sh = TensorSharding::OnDims(2, 0, 1, 1, 0);
    TensorSharding w1_sh = TensorSharding::OnDims(2, 0, 1, 1, 0);
    TensorSharding w2_sh = TensorSharding::OnDims(2, 0, 0, 1, 1);
    auto x = spmd.Parameter(0, Shape({kB, kF}), act_sh, "x");
    auto w1 = spmd.Parameter(1, Shape({kF, kH}), w1_sh, "w1");
    auto w2 = spmd.Parameter(2, Shape({kH, kF}), w2_sh, "w2");
    auto h = spmd.Einsum(*x, *w1, "bf,fh->bh",
                         TensorSharding::OnDims(2, 0, 1, 1, 0));
    auto y = spmd.Einsum(*h, *w2, "bh,hf->bf", act_sh);
    comp->set_root(y->local);

    Tensor gx = Tensor::Random(Shape({kB, kF}), 21);
    Tensor gw1 = Tensor::Random(Shape({kF, kH}), 22);
    Tensor gw2 = Tensor::Random(Shape({kH, kF}), 23);
    p.params = {ShardTensor(gx, act_sh, mesh),
                ShardTensor(gw1, w1_sh, mesh),
                ShardTensor(gw2, w2_sh, mesh)};
    Tensor hh = EinsumSpec::Parse("bf,fh->bh")->Evaluate(gx, gw1).value();
    p.expected = EinsumSpec::Parse("bh,hf->bf")->Evaluate(hh, gw2).value();
    p.out_sharding = act_sh;
    return p;
}

TEST(PipelineTest, FullPipelinePreservesSemantics)
{
    Mesh mesh(2, 4);
    MlpProgram p = BuildSmallMlp(mesh);
    CompilerOptions options;
    options.decompose.use_cost_model = false;  // force every rewrite
    OverlapCompiler compiler(options);
    auto report = compiler.Compile(p.module.get());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(report->decompose.total_decomposed(), 0);
    EXPECT_GT(report->async_permutes, 0);
    ASSERT_TRUE(VerifyModule(*p.module).ok());

    SpmdEvaluator eval(mesh);
    auto result = eval.Evaluate(*p.module->entry(), p.params);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    Tensor assembled = UnshardTensor(*result, p.expected.shape(),
                                     p.out_sharding, mesh);
    EXPECT_TRUE(assembled.AllClose(p.expected, 1e-3f));
}

TEST(PipelineTest, BaselineLeavesCollectivesBlocking)
{
    Mesh mesh(2, 4);
    MlpProgram p = BuildSmallMlp(mesh);
    OverlapCompiler compiler(CompilerOptions::Baseline());
    auto report = compiler.Compile(p.module.get());
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->decompose.total_decomposed(), 0);
    EXPECT_EQ(report->async_permutes, 0);
    int64_t collectives = 0;
    for (const HloInstruction* instr :
         p.module->entry()->instructions()) {
        if (IsBlockingCollective(instr->opcode())) ++collectives;
    }
    EXPECT_GT(collectives, 0);
}

TEST(PipelineTest, OverlapNeverSlowerThanBaselineOnModels)
{
    // The §5.5 gating guarantees the rewrite is only applied when it is
    // estimated profitable; end-to-end that must show as step time less
    // than or approximately equal to the baseline's.
    for (const char* name :
         {"GPT_32B", "Meena_500B", "GLaM_1T", "BigSSL_10B"}) {
        const ModelConfig* config = FindModel(name);
        ASSERT_NE(config, nullptr);
        auto baseline =
            SimulateModelStep(*config, CompilerOptions::Baseline());
        ASSERT_TRUE(baseline.ok()) << name;
        auto overlapped = SimulateModelStep(*config, CompilerOptions());
        ASSERT_TRUE(overlapped.ok()) << name;
        EXPECT_LT(overlapped->step_seconds,
                  baseline->step_seconds * 1.02)
            << name;
        EXPECT_GT(overlapped->mfu, 0.0) << name;
    }
}

TEST(PipelineTest, OverlapReducesExposedCommunication)
{
    const ModelConfig* config = FindModel("GPT_1T");
    auto baseline =
        SimulateModelStep(*config, CompilerOptions::Baseline());
    auto overlapped = SimulateModelStep(*config, CompilerOptions());
    ASSERT_TRUE(baseline.ok());
    ASSERT_TRUE(overlapped.ok());
    // 2-3x communication-cost reduction is the paper's summary claim.
    EXPECT_LT(overlapped->comm_fraction, baseline->comm_fraction / 2.0);
}

TEST(PipelineTest, EnergyFollowsStepTime)
{
    const ModelConfig* config = FindModel("Meena_500B");
    auto baseline =
        SimulateModelStep(*config, CompilerOptions::Baseline());
    auto overlapped = SimulateModelStep(*config, CompilerOptions());
    ASSERT_TRUE(baseline.ok());
    ASSERT_TRUE(overlapped.ok());
    double time_ratio = baseline->step_seconds / overlapped->step_seconds;
    double energy_ratio =
        baseline->energy_joules / overlapped->energy_joules;
    EXPECT_NEAR(time_ratio, energy_ratio, 1e-9);
}

TEST(PipelineTest, CompileRejectsModuleWithoutMesh)
{
    HloModule module("no_mesh");
    module.AddEntryComputation("main");
    OverlapCompiler compiler((CompilerOptions()));
    EXPECT_FALSE(compiler.Compile(&module).ok());
}

TEST(PipelineTest, ReportsSpeedupInExpectedRange)
{
    // §6.2: every weak-scaling GPT size speeds up by roughly 1.1-1.4x.
    for (const ModelConfig& config : Table2GptModels()) {
        auto baseline =
            SimulateModelStep(config, CompilerOptions::Baseline());
        auto overlapped = SimulateModelStep(config, CompilerOptions());
        ASSERT_TRUE(baseline.ok());
        ASSERT_TRUE(overlapped.ok());
        double speedup =
            baseline->step_seconds / overlapped->step_seconds;
        EXPECT_GE(speedup, 1.05) << config.name;
        EXPECT_LE(speedup, 1.55) << config.name;
    }
}

}  // namespace
}  // namespace overlap
