#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/overlap_report.h"
#include "difftest/calibration.h"
#include "difftest/difftest.h"
#include "hlo/builder.h"
#include "hlo/module.h"
#include "sim/cost_model.h"

namespace overlap {
namespace {

class CostModelTest : public ::testing::Test {
  protected:
    CostModelTest() : cost_(spec_) {}

    HardwareSpec spec_;
    CostModel cost_;
    HloModule module_{"m"};
};

TEST_F(CostModelTest, EinsumScalesWithFlops)
{
    HloBuilder b(module_.AddEntryComputation("main"));
    auto* lhs = b.Parameter(0, Shape(DType::kBF16, {512, 1024}));
    auto* rhs = b.Parameter(1, Shape(DType::kBF16, {1024, 2048}));
    auto* e = b.Einsum(lhs, rhs, "mk,kn->mn");
    double flops = 2.0 * 512 * 1024 * 2048;
    double expect =
        flops / (spec_.peak_flops * spec_.einsum_efficiency) +
        spec_.op_overhead;
    EXPECT_NEAR(cost_.EinsumSeconds(e), expect, expect * 1e-9);
}

TEST_F(CostModelTest, AllGatherUsesBidirectionalRing)
{
    HloBuilder b(module_.AddEntryComputation("main"));
    Mesh mesh(8);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {128, 256}));
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    double out_bytes = 8.0 * 128 * 256 * 2;
    double expect = 7.0 * out_bytes / (8.0 * 2.0 * spec_.link_bandwidth) +
                    7.0 * spec_.link_latency;
    EXPECT_NEAR(cost_.BlockingCollectiveSeconds(ag), expect,
                expect * 1e-9);
}

TEST_F(CostModelTest, AllReduceIsTwiceReduceScatter)
{
    HloBuilder b(module_.AddEntryComputation("main"));
    Mesh mesh(8);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {128, 256}));
    auto* rs = b.ReduceScatter(p, 0, mesh.Groups(0));
    auto* ar = b.AllReduce(p, mesh.Groups(0));
    double rs_t = cost_.BlockingCollectiveSeconds(rs);
    double ar_t = cost_.BlockingCollectiveSeconds(ar);
    EXPECT_NEAR(ar_t, 2.0 * rs_t, rs_t * 1e-6);
}

TEST_F(CostModelTest, DecomposedRingUsesHalfTheBandwidth)
{
    // §5.5: the unidirectional CollectivePermute sequence of N-1 steps
    // takes about twice the bidirectional-ring AllGather time.
    HloBuilder b(module_.AddEntryComputation("main"));
    Mesh mesh(8);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {4096, 4096}));
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    double ag_t = cost_.BlockingCollectiveSeconds(ag);
    double ring_t =
        cost_.RingSequenceSeconds(p->shape().byte_size(), /*steps=*/7);
    EXPECT_NEAR(ring_t / ag_t, 2.0, 0.05);
}

TEST_F(CostModelTest, PermuteStartIsFreeDoneCostsTransfer)
{
    HloBuilder b(module_.AddEntryComputation("main"));
    auto* p = b.Parameter(0, Shape(DType::kBF16, {1024}));
    auto* start = b.CollectivePermuteStart(p, {{0, 1}, {1, 0}});
    auto* done = b.CollectivePermuteDone(start);
    EXPECT_DOUBLE_EQ(cost_.InstructionSeconds(start), 0.0);
    EXPECT_GT(cost_.InstructionSeconds(done), 0.0);
}

TEST_F(CostModelTest, ScalarIndexArithmeticIsFree)
{
    HloBuilder b(module_.AddEntryComputation("main"));
    auto* i = b.AxisIndex(0);
    auto* j = b.Remainder(b.Add(i, b.ConstantIndex(1)),
                          b.ConstantIndex(4));
    EXPECT_DOUBLE_EQ(cost_.InstructionSeconds(j), 0.0);
}

TEST_F(CostModelTest, ElementwiseIsMemoryBound)
{
    HloBuilder b(module_.AddEntryComputation("main"));
    auto* p = b.Parameter(0, Shape(DType::kBF16, {1024, 1024}));
    auto* add = b.Add(p, p);
    double bytes = 3.0 * 1024 * 1024 * 2;  // two reads + one write
    EXPECT_NEAR(cost_.InstructionSeconds(add),
                bytes / spec_.mem_bandwidth + spec_.op_overhead, 1e-9);
}

TEST_F(CostModelTest, AllToAllScalesWithSqrtGroup)
{
    HloBuilder b(module_.AddEntryComputation("main"));
    Mesh mesh4(4);
    Mesh mesh64(8, 8);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {4096, 64}));
    auto* a4 = b.AllToAll(p, 0, mesh4.Groups(0));
    auto* a64 = b.AllToAll(p, 0, {{0,  1,  2,  3,  4,  5,  6,  7,
                                   8,  9,  10, 11, 12, 13, 14, 15,
                                   16, 17, 18, 19, 20, 21, 22, 23,
                                   24, 25, 26, 27, 28, 29, 30, 31,
                                   32, 33, 34, 35, 36, 37, 38, 39,
                                   40, 41, 42, 43, 44, 45, 46, 47,
                                   48, 49, 50, 51, 52, 53, 54, 55,
                                   56, 57, 58, 59, 60, 61, 62, 63}});
    double t4 = cost_.BlockingCollectiveSeconds(a4);
    double t64 = cost_.BlockingCollectiveSeconds(a64);
    // sqrt(64)/sqrt(4) = 4x for the same payload.
    EXPECT_NEAR(t64 / t4, 4.0, 0.2);
}

// ---------------------------------------------------------------------
// Calibrated-replay accuracy on real sites (DESIGN.md §15): the span,
// hidden-fraction and speedup predictions the §5.5 gate acts on must
// track what the traced engine simulation measures, per decomposition
// case. Runs under `ctest -L calibration`.
// ---------------------------------------------------------------------

/** The forced-decomposed compile of `spec`, graded against its own
 * traced simulation: the decomposed verdict plus the overlap-report
 * site row carrying predicted vs. simulated hidden fraction. */
struct ForcedSite {
    SiteDecision decision;
    SiteOverlapReport report_site;
};

ForcedSite
ForcedDecision(const difftest::SiteSpec& spec, const char* variant_name)
{
    ForcedSite result;
    auto variant = difftest::FindVariant(variant_name);
    EXPECT_TRUE(variant.ok());
    auto module = difftest::BuildSiteModule(spec);
    EXPECT_TRUE(module.ok()) << module.status().ToString();
    CompilerOptions options;
    options.decompose.use_cost_model = false;
    options.decompose.unroll = variant->unroll;
    options.decompose.bidirectional = variant->bidirectional;
    options.decompose.force_unidirectional = variant->force_unidirectional;
    auto compile = OverlapCompiler(options).Compile(module->get());
    EXPECT_TRUE(compile.ok()) << compile.status().ToString();
    PodSimulator simulator(spec.mesh(), options.hardware);
    auto sim = simulator.Run(**module, /*collect_trace=*/true);
    EXPECT_TRUE(sim.ok()) << sim.status().ToString();
    auto report = BuildOverlapReport(compile.value(), sim.value());
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    for (const SiteDecision& d : compile->decompose.decisions) {
        if (d.decomposed) result.decision = d;
    }
    for (const SiteOverlapReport& site : report->sites) {
        if (site.decomposed) result.report_site = site;
    }
    EXPECT_TRUE(result.decision.decomposed)
        << spec.ToString() << ": no decomposed site";
    return result;
}

TEST(CostModelSiteTest, PredictionsMatchSimulationPerCase)
{
    // The default lowering the gate judges: on every §5.1 case of the
    // shared site space the predicted span is within 3% of the traced
    // simulation, the hidden fraction within 0.05, and the predicted
    // speedup within 0.05 of the simulated end-to-end speedup. For the
    // AG/RS cases that is bidirectional + unrolled; the A2A ring has
    // no bidirectional split (every chunk already takes its short way
    // around), so its default lowering is the uni_unroll sample — the
    // bidi variants dedup onto it in CollectCalibrationSamples.
    for (const difftest::SiteSpec& spec :
         difftest::OverlapReportSiteSpace()) {
        const char* default_variant =
            spec.site_case == difftest::SiteCase::kAllToAll
                ? "uni_unroll"
                : "bidi_unroll";
        auto samples =
            difftest::CollectCalibrationSamples({spec}, HardwareSpec());
        ASSERT_TRUE(samples.ok()) << samples.status().ToString();
        bool saw_default = false;
        for (const difftest::CalibrationSample& sample : *samples) {
            if (sample.variant != default_variant) continue;
            saw_default = true;
            double err = difftest::RelativeSpanError(
                sample, CalibrationFit::Fitted());
            EXPECT_LE(std::fabs(err), 0.03)
                << spec.ToString() << ": span error " << err;

            ForcedSite forced = ForcedDecision(spec, default_variant);
            const SiteDecision& decision = forced.decision;
            double predicted_speedup =
                (decision.comp_t + decision.comm_t) /
                (std::max(decision.comp_t, decision.comm_t_ring) +
                 decision.extra_t);
            EXPECT_NEAR(predicted_speedup, sample.SimulatedSpeedup(),
                        0.05)
                << spec.ToString();

            ASSERT_TRUE(forced.report_site.has_prediction_error)
                << spec.ToString();
            EXPECT_LE(
                std::fabs(forced.report_site.hidden_fraction_error),
                0.05)
                << spec.ToString() << ": predicted hidden "
                << forced.report_site.predicted_hidden_fraction
                << " vs simulated "
                << forced.report_site.sim_hidden_fraction;
        }
        EXPECT_TRUE(saw_default) << spec.ToString();
    }
}

TEST(CostModelSiteTest, OddExtentSitesLowerToUnidirectionalAndPredict)
{
    // Odd shard extents cannot split into two bidirectional
    // half-streams; the pass falls back to the unidirectional loop and
    // the replay must still predict that structure. Odd-extent
    // versions of the big report sites, unrolled lowering. The A2A
    // sites stay ring-eligible at any shard extent (the exchanged dim
    // is always N blocks of it) and their dispatch/combine loops are
    // themselves the odd-extent-capable structure, so they grade here
    // too rather than being skipped.
    for (difftest::SiteSpec spec : difftest::OverlapReportSiteSpace()) {
        spec.shard_extent += 1;  // 64→65, 2048→2049, 8→9, 256→257
        auto samples =
            difftest::CollectCalibrationSamples({spec}, HardwareSpec());
        ASSERT_TRUE(samples.ok()) << samples.status().ToString();
        bool saw_uni = false;
        for (const difftest::CalibrationSample& sample : *samples) {
            if (sample.shape.structure !=
                    LoopStructure::kAllGatherUnidirectional &&
                sample.shape.structure !=
                    LoopStructure::kReduceScatterSingleChain &&
                sample.shape.structure !=
                    LoopStructure::kReduceScatterTwoChain &&
                sample.shape.structure !=
                    LoopStructure::kAllToAllDispatch &&
                sample.shape.structure !=
                    LoopStructure::kAllToAllCombine) {
                continue;
            }
            if (sample.variant != "uni_unroll") continue;
            saw_uni = true;
            double err = difftest::RelativeSpanError(
                sample, CalibrationFit::Fitted());
            EXPECT_LE(std::fabs(err), 0.05)
                << spec.ToString() << " (" << sample.variant
                << "): span error " << err;
        }
        EXPECT_TRUE(saw_uni) << spec.ToString();

        // The bidirectional request itself must come back as a
        // unidirectional structure: an odd shard extent cannot split
        // into two half-streams.
        auto module = difftest::BuildSiteModule(spec);
        ASSERT_TRUE(module.ok());
        CompilerOptions options;
        options.decompose.use_cost_model = false;
        auto compile = OverlapCompiler(options).Compile(module->get());
        ASSERT_TRUE(compile.ok());
        for (const SiteDecision& d : compile->decompose.decisions) {
            if (!d.decomposed) continue;
            LoopStructure structure = d.loop_shape.structure;
            EXPECT_TRUE(structure !=
                            LoopStructure::kAllGatherBidirectional &&
                        structure != LoopStructure::kAllGatherTwoWay &&
                        structure !=
                            LoopStructure::kReduceScatterBidirectional)
                << spec.ToString() << ": odd extent emitted "
                << LoopStructureName(structure);
        }
    }
}

}  // namespace
}  // namespace overlap
