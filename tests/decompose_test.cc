#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "hlo/builder.h"
#include "hlo/module.h"
#include "hlo/verifier.h"
#include "interp/evaluator.h"
#include "passes/async.h"
#include "passes/decompose.h"
#include "passes/schedule.h"
#include "test_util.h"

namespace overlap {
namespace {

using testing_util::ShardTensor;

/** A ready-to-evaluate SPMD scenario with its expected per-device output. */
struct Scenario {
    std::unique_ptr<HloModule> module;
    std::vector<std::vector<Tensor>> params;
    std::vector<Tensor> expected;
};

/** Counts instructions with the given opcode. */
int64_t
CountOps(const HloComputation& comp, HloOpcode opcode)
{
    int64_t count = 0;
    for (const HloInstruction* instr : comp.instructions()) {
        if (instr->opcode() == opcode) ++count;
    }
    return count;
}

/**
 * AllGather-Einsum on `axis` of `mesh`. The gathered operand sits on
 * `gathered_side` and is partitioned along a dimension of the given
 * `kind` (non-contracting / contracting / batch — the paper's three
 * cases).
 */
Scenario
BuildAllGatherScenario(const Mesh& mesh, int64_t axis, EinsumDimKind kind,
                       int64_t gathered_side, int64_t shard = 2)
{
    const int64_t n = mesh.axis_size(axis);
    Scenario s;
    s.module = std::make_unique<HloModule>("ag_scenario");
    s.module->set_mesh(mesh);
    HloComputation* comp = s.module->AddEntryComputation("main");
    HloBuilder b(comp);

    std::string spec;
    Shape lhs_global, rhs_global;
    int64_t gathered_dim = 0;
    if (kind == EinsumDimKind::kBatch) {
        spec = "bmf,bfh->bmh";
        lhs_global = Shape({n * shard, 3, 4});
        rhs_global = Shape({n * shard, 4, 5});
        gathered_dim = 0;  // 'b' in both operands
    } else if (kind == EinsumDimKind::kContracting) {
        spec = "bf,fh->bh";
        lhs_global = Shape({3, n * shard});
        rhs_global = Shape({n * shard, 5});
        gathered_dim = gathered_side == 0 ? 1 : 0;  // 'f'
    } else {
        spec = "bf,fh->bh";
        if (gathered_side == 0) {
            lhs_global = Shape({n * shard, 4});  // 'b' partitioned
            rhs_global = Shape({4, 5});
            gathered_dim = 0;
        } else {
            lhs_global = Shape({3, 4});
            rhs_global = Shape({4, n * shard});  // 'h' partitioned
            gathered_dim = 1;
        }
    }
    const Shape& gathered_global =
        gathered_side == 0 ? lhs_global : rhs_global;
    const Shape& other_global = gathered_side == 0 ? rhs_global : lhs_global;

    TensorSharding sharding = TensorSharding::OnDim(
        gathered_global.rank(), gathered_dim, axis);
    Shape shard_shape = sharding.ShardShape(gathered_global, mesh);

    auto* shard_param = b.Parameter(0, shard_shape, "gathered_shard");
    auto* other_param = b.Parameter(1, other_global, "other");
    auto* ag = b.AllGather(shard_param, gathered_dim, mesh.Groups(axis));
    auto* einsum = gathered_side == 0 ? b.Einsum(ag, other_param, spec)
                                      : b.Einsum(other_param, ag, spec);
    comp->set_root(einsum);

    Tensor gathered_data = Tensor::Random(gathered_global, 11);
    Tensor other_data = Tensor::Random(other_global, 22);
    s.params.push_back(ShardTensor(gathered_data, sharding, mesh));
    s.params.push_back({other_data});

    // Ground truth: the unpartitioned einsum, replicated on every device.
    auto parsed = EinsumSpec::Parse(spec);
    auto global = gathered_side == 0
                      ? parsed->Evaluate(gathered_data, other_data)
                      : parsed->Evaluate(other_data, gathered_data);
    s.expected.assign(static_cast<size_t>(mesh.num_devices()),
                      global.value());
    return s;
}

/**
 * Einsum-ReduceScatter on `axis`: the operands are contracted along a
 * dimension that was sharded, so each device produces a partial result
 * that the ReduceScatter sums and scatters along the output label owned
 * by `sliced_side`.
 */
Scenario
BuildReduceScatterScenario(const Mesh& mesh, int64_t axis,
                           int64_t sliced_side, int64_t out_shard = 2)
{
    const int64_t n = mesh.axis_size(axis);
    const int64_t f_shard = 3;
    Scenario s;
    s.module = std::make_unique<HloModule>("rs_scenario");
    s.module->set_mesh(mesh);
    HloComputation* comp = s.module->AddEntryComputation("main");
    HloBuilder b(comp);

    // "bf,fh->bh"; scatter along 'b' (lhs-free) or 'h' (rhs-free).
    int64_t b_size = sliced_side == 0 ? out_shard * n : 3;
    int64_t h_size = sliced_side == 1 ? out_shard * n : 5;
    Shape lhs_global({b_size, n * f_shard});
    Shape rhs_global({n * f_shard, h_size});
    TensorSharding lhs_sharding = TensorSharding::OnDim(2, 1, axis);
    TensorSharding rhs_sharding = TensorSharding::OnDim(2, 0, axis);

    auto* lhs = b.Parameter(0, lhs_sharding.ShardShape(lhs_global, mesh));
    auto* rhs = b.Parameter(1, rhs_sharding.ShardShape(rhs_global, mesh));
    auto* einsum = b.Einsum(lhs, rhs, "bf,fh->bh");
    int64_t rs_dim = sliced_side == 0 ? 0 : 1;
    auto* rs = b.ReduceScatter(einsum, rs_dim, mesh.Groups(axis));
    comp->set_root(rs);

    Tensor lhs_data = Tensor::Random(lhs_global, 33);
    Tensor rhs_data = Tensor::Random(rhs_global, 44);
    s.params.push_back(ShardTensor(lhs_data, lhs_sharding, mesh));
    s.params.push_back(ShardTensor(rhs_data, rhs_sharding, mesh));

    auto parsed = EinsumSpec::Parse("bf,fh->bh");
    Tensor global = parsed->Evaluate(lhs_data, rhs_data).value();
    TensorSharding out_sharding = TensorSharding::OnDim(2, rs_dim, axis);
    s.expected = ShardTensor(global, out_sharding, mesh);
    return s;
}

/**
 * AllToAll-Einsum (MoE dispatch) or Einsum-AllToAll (MoE combine) on
 * `axis` — the §18 sites. Each device holds its own token block; the
 * exchange routes chunk j to ring peer j. Ground truth is the blocking
 * program's own evaluation (the §10 oracle property: every lowering of
 * the exchange must agree with the blocking reference).
 */
Scenario
BuildAllToAllScenario(const Mesh& mesh, int64_t axis, bool dispatch,
                      int64_t shard = 2)
{
    const int64_t n = mesh.axis_size(axis);
    const int64_t t = n * shard;  // exchanged rows: one chunk per peer
    Scenario s;
    s.module = std::make_unique<HloModule>("a2a_scenario");
    s.module->set_mesh(mesh);
    HloComputation* comp = s.module->AddEntryComputation("main");
    HloBuilder b(comp);

    Shape tokens_shape({t, 4});
    Shape w_shape({4, 5});
    auto* tokens = b.Parameter(0, tokens_shape, "tokens");
    auto* w = b.Parameter(1, w_shape, "w_expert");
    if (dispatch) {
        auto* a2a = b.AllToAll(tokens, 0, mesh.Groups(axis));
        comp->set_root(b.Einsum(a2a, w, "td,dh->th"));
    } else {
        auto* einsum = b.Einsum(tokens, w, "td,dh->th");
        comp->set_root(b.AllToAll(einsum, 0, mesh.Groups(axis)));
    }

    std::vector<Tensor> token_blocks;
    for (int64_t d = 0; d < mesh.num_devices(); ++d) {
        token_blocks.push_back(Tensor::Random(tokens_shape, 55 + d));
    }
    s.params.push_back(std::move(token_blocks));
    s.params.push_back({Tensor::Random(w_shape, 66)});

    SpmdEvaluator eval(mesh);
    auto blocking = eval.Evaluate(*comp, s.params);
    s.expected = blocking.value();
    return s;
}

void
CheckEquivalence(Scenario& s, const DecomposeOptions& options)
{
    HloComputation* comp = s.module->entry();
    const Mesh& mesh = *s.module->mesh();
    SpmdEvaluator eval(mesh);

    ASSERT_TRUE(VerifyModule(*s.module).ok());
    auto before = eval.Evaluate(*comp, s.params);
    ASSERT_TRUE(before.ok());
    for (int64_t d = 0; d < mesh.num_devices(); ++d) {
        ASSERT_TRUE((*before)[static_cast<size_t>(d)].AllClose(
            s.expected[static_cast<size_t>(d)], 1e-3f))
            << "pre-pass program disagrees with ground truth on device "
            << d;
    }

    CostModel cost((HardwareSpec()));
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    auto stats = decomposer.Run(comp);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->total_decomposed(), 1);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllGather), 0);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kReduceScatter), 0);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllToAll), 0);
    ASSERT_TRUE(VerifyModule(*s.module).ok());

    auto after = eval.Evaluate(*comp, s.params);
    ASSERT_TRUE(after.ok());
    for (int64_t d = 0; d < mesh.num_devices(); ++d) {
        EXPECT_TRUE((*after)[static_cast<size_t>(d)].AllClose(
            s.expected[static_cast<size_t>(d)], 1e-3f))
            << "decomposed program wrong on device " << d;
    }

    // Async split + scheduling must also preserve semantics.
    auto converted = CreateAsyncCollectivePermutes(comp);
    ASSERT_TRUE(converted.ok());
    ASSERT_TRUE(VerifyModule(*s.module).ok());
    ASSERT_TRUE(
        ScheduleComputation(comp, cost, SchedulerKind::kBottomUp).ok());
    auto final_result = eval.Evaluate(*comp, s.params);
    ASSERT_TRUE(final_result.ok());
    for (int64_t d = 0; d < mesh.num_devices(); ++d) {
        EXPECT_TRUE((*final_result)[static_cast<size_t>(d)].AllClose(
            s.expected[static_cast<size_t>(d)], 1e-3f))
            << "scheduled program wrong on device " << d;
    }
}

// ---------------------------------------------------------------------------
// Property sweep: every case x partition count x optimization combination.
// ---------------------------------------------------------------------------

class DecomposeEquivalence
    : public ::testing::TestWithParam<std::tuple<int, bool, bool>> {
  protected:
    DecomposeOptions Options() const
    {
        DecomposeOptions options;
        options.unroll = std::get<1>(GetParam());
        options.bidirectional = std::get<2>(GetParam());
        options.use_cost_model = false;  // always rewrite for the sweep
        return options;
    }
    int64_t N() const { return std::get<0>(GetParam()); }
};

TEST_P(DecomposeEquivalence, AllGatherNonContractingLhs)
{
    Mesh mesh(N());
    auto s = BuildAllGatherScenario(mesh, 0, EinsumDimKind::kLhsFree, 0);
    CheckEquivalence(s, Options());
}

TEST_P(DecomposeEquivalence, AllGatherNonContractingRhs)
{
    Mesh mesh(N());
    auto s = BuildAllGatherScenario(mesh, 0, EinsumDimKind::kRhsFree, 1);
    CheckEquivalence(s, Options());
}

TEST_P(DecomposeEquivalence, AllGatherContracting)
{
    Mesh mesh(N());
    auto s =
        BuildAllGatherScenario(mesh, 0, EinsumDimKind::kContracting, 0);
    CheckEquivalence(s, Options());
}

TEST_P(DecomposeEquivalence, AllGatherContractingRhs)
{
    Mesh mesh(N());
    auto s =
        BuildAllGatherScenario(mesh, 0, EinsumDimKind::kContracting, 1);
    CheckEquivalence(s, Options());
}

TEST_P(DecomposeEquivalence, AllGatherBatch)
{
    Mesh mesh(N());
    auto s = BuildAllGatherScenario(mesh, 0, EinsumDimKind::kBatch, 0);
    CheckEquivalence(s, Options());
}

TEST_P(DecomposeEquivalence, ReduceScatterLhsFree)
{
    Mesh mesh(N());
    auto s = BuildReduceScatterScenario(mesh, 0, 0);
    CheckEquivalence(s, Options());
}

TEST_P(DecomposeEquivalence, ReduceScatterRhsFree)
{
    Mesh mesh(N());
    auto s = BuildReduceScatterScenario(mesh, 0, 1);
    CheckEquivalence(s, Options());
}

TEST_P(DecomposeEquivalence, AllGatherOnTorusSubgroups)
{
    Mesh mesh(2, N());
    auto s = BuildAllGatherScenario(mesh, 1, EinsumDimKind::kLhsFree, 0);
    CheckEquivalence(s, Options());
}

TEST_P(DecomposeEquivalence, ReduceScatterOnTorusSubgroups)
{
    Mesh mesh(2, N());
    auto s = BuildReduceScatterScenario(mesh, 1, 1);
    CheckEquivalence(s, Options());
}

TEST_P(DecomposeEquivalence, AllToAllDispatch)
{
    Mesh mesh(N());
    auto s = BuildAllToAllScenario(mesh, 0, /*dispatch=*/true);
    CheckEquivalence(s, Options());
}

TEST_P(DecomposeEquivalence, AllToAllCombine)
{
    Mesh mesh(N());
    auto s = BuildAllToAllScenario(mesh, 0, /*dispatch=*/false);
    CheckEquivalence(s, Options());
}

TEST_P(DecomposeEquivalence, AllToAllDispatchOnTorusSubgroups)
{
    Mesh mesh(2, N());
    auto s = BuildAllToAllScenario(mesh, 1, /*dispatch=*/true);
    CheckEquivalence(s, Options());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecomposeEquivalence,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Bool(),   // unroll
                       ::testing::Bool()),  // bidirectional
    [](const ::testing::TestParamInfo<std::tuple<int, bool, bool>>& info) {
        return "N" + std::to_string(std::get<0>(info.param)) +
               (std::get<1>(info.param) ? "_unroll" : "_nounroll") +
               (std::get<2>(info.param) ? "_bidi" : "_uni");
    });

// ---------------------------------------------------------------------------
// Odd-shape oracle sweep: all four site cases with an odd shard extent,
// on both an odd ring (N=5, no §5.4.2 structure possible) and an even
// ring (N=4, where an odd extent must force the unidirectional
// fallback). Only even/even paths were exercised before.
// ---------------------------------------------------------------------------

class OddShapeEquivalence
    : public ::testing::TestWithParam<std::tuple<int, bool, bool>> {
  protected:
    DecomposeOptions Options() const
    {
        DecomposeOptions options;
        options.unroll = std::get<1>(GetParam());
        options.bidirectional = std::get<2>(GetParam());
        options.use_cost_model = false;
        return options;
    }
    int64_t N() const { return std::get<0>(GetParam()); }
};

TEST_P(OddShapeEquivalence, AllGatherNonContractingOddExtent)
{
    Mesh mesh(N());
    auto s = BuildAllGatherScenario(mesh, 0, EinsumDimKind::kLhsFree, 0,
                                    /*shard=*/3);
    CheckEquivalence(s, Options());
}

TEST_P(OddShapeEquivalence, AllGatherContractingOddExtent)
{
    Mesh mesh(N());
    auto s = BuildAllGatherScenario(mesh, 0, EinsumDimKind::kContracting,
                                    0, /*shard=*/3);
    CheckEquivalence(s, Options());
}

TEST_P(OddShapeEquivalence, AllGatherBatchOddExtent)
{
    Mesh mesh(N());
    auto s = BuildAllGatherScenario(mesh, 0, EinsumDimKind::kBatch, 0,
                                    /*shard=*/3);
    CheckEquivalence(s, Options());
}

TEST_P(OddShapeEquivalence, ReduceScatterOddExtent)
{
    Mesh mesh(N());
    auto s = BuildReduceScatterScenario(mesh, 0, 0, /*out_shard=*/3);
    CheckEquivalence(s, Options());
}

INSTANTIATE_TEST_SUITE_P(
    OddSweep, OddShapeEquivalence,
    ::testing::Combine(::testing::Values(2, 4, 5),
                       ::testing::Bool(),   // unroll
                       ::testing::Bool()),  // bidirectional
    [](const ::testing::TestParamInfo<std::tuple<int, bool, bool>>& info) {
        return "N" + std::to_string(std::get<0>(info.param)) +
               (std::get<1>(info.param) ? "_unroll" : "_nounroll") +
               (std::get<2>(info.param) ? "_bidi" : "_uni");
    });

// ---------------------------------------------------------------------------
// Bidirectional gating consistency (the predicate shared by estimator,
// emitter and gate).
// ---------------------------------------------------------------------------

TEST(BidirectionalEligibilityTest, PredicatesAgreeOnParity)
{
    EXPECT_TRUE(BidirectionalRingEligible(4, 2));
    EXPECT_TRUE(BidirectionalRingEligible(8, 4));
    EXPECT_FALSE(BidirectionalRingEligible(4, 3));  // odd shard extent
    EXPECT_FALSE(BidirectionalRingEligible(3, 2));  // odd ring
    EXPECT_FALSE(BidirectionalRingEligible(2, 2));  // two-way territory
    EXPECT_TRUE(TwoWayExchangeEligible(2, 2));
    EXPECT_FALSE(TwoWayExchangeEligible(2, 3));  // odd shard extent
    EXPECT_FALSE(TwoWayExchangeEligible(4, 2));
}

TEST(BidirectionalEligibilityTest, OddExtentFallsBackToUnidirectional)
{
    // N=4 with an odd shard extent: the two counter-rotating streams
    // cannot split the work evenly, so the emitter must fall back to
    // the unidirectional loop — whose partial einsums carry no fusion
    // pairing — instead of emitting a half-shard split.
    Mesh mesh(4);
    auto even = BuildAllGatherScenario(mesh, 0, EinsumDimKind::kLhsFree,
                                       0, /*shard=*/2);
    auto odd = BuildAllGatherScenario(mesh, 0, EinsumDimKind::kLhsFree,
                                      0, /*shard=*/3);
    DecomposeOptions options;
    options.use_cost_model = false;
    options.bidirectional = true;
    CostModel cost((HardwareSpec()));
    auto fused_einsums = [](const HloComputation& comp) {
        int64_t fused = 0;
        for (const HloInstruction* instr : comp.instructions()) {
            if (instr->opcode() == HloOpcode::kEinsum &&
                instr->fusion_group() >= 0) {
                ++fused;
            }
        }
        return fused;
    };
    CollectiveEinsumDecomposer even_decomposer(mesh, &cost, options);
    ASSERT_TRUE(even_decomposer.Run(even.module->entry()).ok());
    EXPECT_GT(fused_einsums(*even.module->entry()), 0);
    CollectiveEinsumDecomposer odd_decomposer(mesh, &cost, options);
    ASSERT_TRUE(odd_decomposer.Run(odd.module->entry()).ok());
    EXPECT_EQ(fused_einsums(*odd.module->entry()), 0);
    // Unidirectional AllGather over N=4: N-1 = 3 permutes, N einsums.
    EXPECT_EQ(CountOps(*odd.module->entry(),
                       HloOpcode::kCollectivePermute),
              3);
    EXPECT_EQ(CountOps(*odd.module->entry(), HloOpcode::kEinsum), 4);
}

TEST(BidirectionalEligibilityTest, OddExtentTwoWayFallsBack)
{
    // N=2 with an odd shard extent cannot halve the shard: no kSlice
    // half-split ops may appear; the plain unidirectional loop runs.
    Mesh mesh(2);
    auto even = BuildAllGatherScenario(mesh, 0, EinsumDimKind::kLhsFree,
                                       0, /*shard=*/2);
    auto odd = BuildAllGatherScenario(mesh, 0, EinsumDimKind::kLhsFree,
                                      0, /*shard=*/3);
    DecomposeOptions options;
    options.use_cost_model = false;
    options.bidirectional = true;
    CostModel cost((HardwareSpec()));
    CollectiveEinsumDecomposer even_decomposer(mesh, &cost, options);
    ASSERT_TRUE(even_decomposer.Run(even.module->entry()).ok());
    EXPECT_EQ(CountOps(*even.module->entry(), HloOpcode::kSlice), 2);
    CollectiveEinsumDecomposer odd_decomposer(mesh, &cost, options);
    ASSERT_TRUE(odd_decomposer.Run(odd.module->entry()).ok());
    EXPECT_EQ(CountOps(*odd.module->entry(), HloOpcode::kSlice), 0);
    EXPECT_EQ(CountOps(*odd.module->entry(),
                       HloOpcode::kCollectivePermute),
              1);
}

// ---------------------------------------------------------------------------
// Targeted behaviour tests.
// ---------------------------------------------------------------------------

TEST(RingShiftPairsTest, LeftShiftMovesDataDown)
{
    Mesh mesh(4);
    auto pairs = RingShiftPairs(mesh, 0, 1);
    ASSERT_EQ(pairs.size(), 4u);
    // Data at position j lands at j-1: source j targets j-1 (mod 4).
    EXPECT_EQ(pairs[0], (std::pair<int64_t, int64_t>{0, 3}));
    EXPECT_EQ(pairs[1], (std::pair<int64_t, int64_t>{1, 0}));
}

TEST(RingShiftPairsTest, TorusSubgroupPairsStayInGroup)
{
    Mesh mesh(2, 4);
    auto pairs = RingShiftPairs(mesh, 1, -1);
    ASSERT_EQ(pairs.size(), 8u);
    for (const auto& [src, dst] : pairs) {
        EXPECT_EQ(src / 4, dst / 4) << "pair crossed its ring";
    }
}

TEST(DecomposeTest, SkipsAllGatherWithMultipleUsers)
{
    Mesh mesh(4);
    HloModule module("m");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2, 4}));
    auto* w = b.Parameter(1, Shape({4, 5}));
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    auto* e = b.Einsum(ag, w, "bf,fh->bh");
    comp->set_root(b.Add(e, e));
    // Second user of the AllGather besides the einsum.
    b.Negate(ag);
    DecomposeOptions options;
    options.use_cost_model = false;
    CostModel cost((HardwareSpec()));
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    auto stats = decomposer.Run(comp);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->total_decomposed(), 0);
    EXPECT_EQ(stats->skipped_unsupported, 1);
}

TEST(DecomposeTest, SkipsGroupsNotMatchingMeshAxis)
{
    Mesh mesh(2, 2);
    HloModule module("m");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({1, 4}));
    auto* w = b.Parameter(1, Shape({4, 5}));
    // Groups spanning the whole mesh match no single axis.
    auto* ag = b.AllGather(p, 0, {{0, 1, 2, 3}});
    comp->set_root(b.Einsum(ag, w, "bf,fh->bh"));
    DecomposeOptions options;
    options.use_cost_model = false;
    CostModel cost((HardwareSpec()));
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    auto stats = decomposer.Run(comp);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->total_decomposed(), 0);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllGather), 1);
}

TEST(AllToAllEligibilityTest, RequiresChunkDivisibility)
{
    // Shared predicate with the verifier's divisibility rule: one equal
    // chunk per ring peer, at least two peers.
    EXPECT_TRUE(AllToAllRingEligible(4, 8));
    EXPECT_TRUE(AllToAllRingEligible(3, 9));   // odd rings are fine
    EXPECT_TRUE(AllToAllRingEligible(4, 4));   // single-row chunks
    EXPECT_FALSE(AllToAllRingEligible(4, 6));  // 6 % 4 != 0
    EXPECT_FALSE(AllToAllRingEligible(1, 8));  // no ring
    EXPECT_FALSE(AllToAllRingEligible(4, 0));
    EXPECT_TRUE(ChunkSplitEligible(4, 8));
    EXPECT_FALSE(ChunkSplitEligible(4, 2));
}

TEST(DecomposeTest, AllToAllKnobOffLeavesExchangeBlocking)
{
    // DecomposeOptions::all_to_all = false is the "blocking exchange"
    // arm of bench/moe_sweep: the matcher must not even judge the site.
    Mesh mesh(4);
    auto s = BuildAllToAllScenario(mesh, 0, /*dispatch=*/true);
    HloComputation* comp = s.module->entry();
    DecomposeOptions options;
    options.use_cost_model = false;
    options.all_to_all = false;
    CostModel cost((HardwareSpec()));
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    auto stats = decomposer.Run(comp);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->all_to_all_sites, 0);
    EXPECT_EQ(stats->total_decomposed(), 0);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllToAll), 1);
}

TEST(DecomposeTest, SkipsAllToAllWithMultipleUsers)
{
    // The loop replaces the exchange wholesale, so a dispatch A2A with a
    // second consumer stays blocking (the step builder rematerializes
    // exchanges per consumer for exactly this reason).
    Mesh mesh(4);
    auto s = BuildAllToAllScenario(mesh, 0, /*dispatch=*/true);
    HloComputation* comp = s.module->entry();
    HloInstruction* a2a = nullptr;
    for (HloInstruction* instr : comp->instructions()) {
        if (instr->opcode() == HloOpcode::kAllToAll) a2a = instr;
    }
    ASSERT_NE(a2a, nullptr);
    HloBuilder b(comp);
    b.Negate(a2a);  // second user besides the expert einsum
    DecomposeOptions options;
    options.use_cost_model = false;
    CostModel cost((HardwareSpec()));
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    auto stats = decomposer.Run(comp);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->all_to_all_sites, 0);
    EXPECT_EQ(stats->skipped_unsupported, 1);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllToAll), 1);
}

TEST(DecomposeTest, SkipsAllToAllWithIndivisibleChunks)
{
    // 6 rows across a 4-ring cannot carve equal per-peer chunks. Shape
    // inference already rejects such an exchange at build time, but the
    // matcher must not rely on the module having been verified — build
    // the malformed site directly and require the shared eligibility
    // predicate to keep it blocking.
    Mesh mesh(4);
    HloModule module("m");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* tokens = b.Parameter(0, Shape({6, 4}));
    auto* w = b.Parameter(1, Shape({4, 5}));
    InstrAttrs attrs;
    attrs.dim = 0;
    attrs.groups = mesh.Groups(0);
    HloInstruction* a2a = comp->AddInstruction(
        HloOpcode::kAllToAll, Shape({6, 4}), {tokens}, std::move(attrs));
    comp->set_root(b.Einsum(a2a, w, "td,dh->th"));
    DecomposeOptions options;
    options.use_cost_model = false;
    CostModel cost((HardwareSpec()));
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    auto stats = decomposer.Run(comp);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->all_to_all_sites, 0);
    EXPECT_EQ(stats->skipped_unsupported, 1);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllToAll), 1);
}

TEST(DecomposeTest, CostModelRejectsTinySites)
{
    Mesh mesh(4);
    HloModule module("m");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2, 4}));
    auto* w = b.Parameter(1, Shape({4, 4}));
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(ag, w, "bf,fh->bh"));
    DecomposeOptions options;  // gating on
    CostModel cost((HardwareSpec()));
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    auto stats = decomposer.Run(comp);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->total_decomposed(), 0);
    EXPECT_EQ(stats->rejected_by_cost_model, 1);
}

TEST(DecomposeTest, CostModelAcceptsLargeSites)
{
    Mesh mesh(8);
    HloModule module("m");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    // Large enough that the saved AllGather clearly exceeds the loop's
    // fixed costs (combine traffic, prologue permute).
    auto* p = b.Parameter(0, Shape(DType::kBF16, {2048, 4096}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {4096, 8192}));
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(ag, w, "bf,fh->bh"));
    DecomposeOptions options;  // gating on
    CostModel cost((HardwareSpec()));
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    auto stats = decomposer.Run(comp);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->total_decomposed(), 1);
}

TEST(DecomposeTest, PicksOneCandidatePerEinsum)
{
    // Einsum with two AllGather operands: exactly one is decomposed and
    // the other stays a blocking collective.
    Mesh mesh(4);
    HloModule module("m");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* act = b.Parameter(0, Shape(DType::kBF16, {512, 4096}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {1024, 8192}));
    auto* ag_act = b.AllGather(act, 0, mesh.Groups(0));
    auto* ag_w = b.AllGather(w, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(ag_act, ag_w, "bf,fh->bh"));
    DecomposeOptions options;
    options.use_cost_model = false;
    CostModel cost((HardwareSpec()));
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    auto stats = decomposer.Run(comp);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->allgather_sites, 1);
    EXPECT_EQ(CountOps(*comp, HloOpcode::kAllGather), 1);
    EXPECT_TRUE(VerifyModule(module).ok());
}

TEST(DecomposeTest, EmitsExpectedPermuteCounts)
{
    // Unidirectional AllGather over N=4 needs N-1 = 3 permutes.
    Mesh mesh(4);
    auto s = BuildAllGatherScenario(mesh, 0, EinsumDimKind::kLhsFree, 0);
    DecomposeOptions options;
    options.use_cost_model = false;
    options.unroll = true;
    options.bidirectional = false;
    CostModel cost((HardwareSpec()));
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    ASSERT_TRUE(decomposer.Run(s.module->entry()).ok());
    EXPECT_EQ(CountOps(*s.module->entry(), HloOpcode::kCollectivePermute),
              3);
    EXPECT_EQ(CountOps(*s.module->entry(), HloOpcode::kEinsum), 4);
}

TEST(DecomposeTest, NoCopiesWhenUnrolled)
{
    Mesh mesh(4);
    auto unrolled =
        BuildAllGatherScenario(mesh, 0, EinsumDimKind::kLhsFree, 0);
    auto naive =
        BuildAllGatherScenario(mesh, 0, EinsumDimKind::kLhsFree, 0);
    CostModel cost((HardwareSpec()));
    DecomposeOptions options;
    options.use_cost_model = false;
    options.bidirectional = false;
    options.unroll = true;
    CollectiveEinsumDecomposer with_unroll(mesh, &cost, options);
    ASSERT_TRUE(with_unroll.Run(unrolled.module->entry()).ok());
    options.unroll = false;
    CollectiveEinsumDecomposer without_unroll(mesh, &cost, options);
    ASSERT_TRUE(without_unroll.Run(naive.module->entry()).ok());
    EXPECT_EQ(CountOps(*unrolled.module->entry(), HloOpcode::kCopy), 0);
    EXPECT_EQ(CountOps(*naive.module->entry(), HloOpcode::kCopy), 3);
}

TEST(DecomposeTest, BidirectionalPairsShareFusionGroups)
{
    Mesh mesh(4);
    auto s = BuildAllGatherScenario(mesh, 0, EinsumDimKind::kLhsFree, 0);
    DecomposeOptions options;
    options.use_cost_model = false;
    options.bidirectional = true;
    CostModel cost((HardwareSpec()));
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    ASSERT_TRUE(decomposer.Run(s.module->entry()).ok());
    // N=4 bidirectional: N/2 = 2 iterations x 2 paired einsums.
    std::vector<const HloInstruction*> einsums;
    for (const HloInstruction* instr : s.module->entry()->instructions()) {
        if (instr->opcode() == HloOpcode::kEinsum) einsums.push_back(instr);
    }
    ASSERT_EQ(einsums.size(), 4u);
    EXPECT_GE(einsums[0]->fusion_group(), 0);
    EXPECT_EQ(einsums[0]->fusion_group(), einsums[1]->fusion_group());
    EXPECT_EQ(einsums[2]->fusion_group(), einsums[3]->fusion_group());
    EXPECT_NE(einsums[0]->fusion_group(), einsums[2]->fusion_group());
}

}  // namespace
}  // namespace overlap
