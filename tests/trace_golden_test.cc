/**
 * @file
 * Golden-trace schema tests (DESIGN.md §13): a tiny fixed model goes
 * through the full pipeline with metrics + tracing on, and the unified
 * trace must keep its shape — the compiler lane lists the pipeline
 * passes in order, simulator events pair every async Start with its
 * Done-wait inside the in-flight window, evaluator channel spans
 * nest inside their device-program span, and the set of simulator
 * event names matches the golden list committed under tests/golden/.
 *
 * The golden check pins *names and kinds*, never timestamps; regenerate
 * with OVERLAP_REGEN_GOLDEN=1 after an intentional schema change.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/overlap_compiler.h"
#include "interp/evaluator.h"
#include "sim/engine.h"
#include "sim/trace_export.h"
#include "spmd/spmd_builder.h"
#include "support/metrics.h"
#include "support/tracing.h"
#include "test_util.h"

namespace overlap {
namespace {

using testing_util::ShardTensor;

const char* const kGoldenPath =
    OVERLAP_TESTDATA_DIR "/trace_events.golden";

/** The fixed two-layer MLP every golden assertion runs against. */
struct TraceFixture {
    std::unique_ptr<HloModule> module;
    std::vector<std::vector<Tensor>> params;
};

TraceFixture
BuildFixture(const Mesh& mesh)
{
    TraceFixture f;
    f.module = std::make_unique<HloModule>("mlp");
    f.module->set_mesh(mesh);
    HloComputation* comp = f.module->AddEntryComputation("main");
    SpmdBuilder spmd(comp, mesh);

    const int64_t kB = 8, kF = 8, kH = 16;
    TensorSharding act_sh = TensorSharding::OnDims(2, 0, 1, 1, 0);
    TensorSharding w1_sh = TensorSharding::OnDims(2, 0, 1, 1, 0);
    TensorSharding w2_sh = TensorSharding::OnDims(2, 0, 0, 1, 1);
    auto x = spmd.Parameter(0, Shape({kB, kF}), act_sh, "x");
    auto w1 = spmd.Parameter(1, Shape({kF, kH}), w1_sh, "w1");
    auto w2 = spmd.Parameter(2, Shape({kH, kF}), w2_sh, "w2");
    auto h = spmd.Einsum(*x, *w1, "bf,fh->bh",
                         TensorSharding::OnDims(2, 0, 1, 1, 0));
    auto y = spmd.Einsum(*h, *w2, "bh,hf->bf", act_sh);
    comp->set_root(y->local);

    Tensor gx = Tensor::Random(Shape({kB, kF}), 21);
    Tensor gw1 = Tensor::Random(Shape({kF, kH}), 22);
    Tensor gw2 = Tensor::Random(Shape({kH, kF}), 23);
    f.params = {ShardTensor(gx, act_sh, mesh),
                ShardTensor(gw1, w1_sh, mesh),
                ShardTensor(gw2, w2_sh, mesh)};
    return f;
}

const char*
KindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::kCompute: return "compute";
      case TraceKind::kCollective: return "collective";
      case TraceKind::kTransferWait: return "transfer_wait";
      case TraceKind::kTransferInFlight: return "transfer_in_flight";
    }
    return "unknown";
}

/** Compiles the fixture (every site decomposed) and simulates it with
 * tracing; also returns the compile report for the pass lane. */
struct TracedRun {
    TraceFixture fixture;
    CompileReport compile;
    SimResult sim;
};

TracedRun
RunTraced()
{
    TracedRun run;
    run.fixture = BuildFixture(Mesh(2, 4));
    CompilerOptions options;
    options.decompose.use_cost_model = false;  // deterministic rewrites
    OverlapCompiler compiler(options);
    auto compile = compiler.Compile(run.fixture.module.get());
    EXPECT_TRUE(compile.ok()) << compile.status().ToString();
    run.compile = std::move(compile).value();

    PodSimulator simulator(*run.fixture.module->mesh(), options.hardware);
    auto sim = simulator.Run(*run.fixture.module, /*collect_trace=*/true);
    EXPECT_TRUE(sim.ok()) << sim.status().ToString();
    run.sim = std::move(sim).value();
    return run;
}

TEST(TraceGoldenTest, CompilerLaneListsPipelinePassesInOrder)
{
    TracedRun run = RunTraced();
    const std::vector<std::string> expected = {
        "decompose", "async-permute-creation", "concat-fusion-rewrites",
        "fusion", "schedule"};
    ASSERT_EQ(run.compile.pass_timings.size(), expected.size());
    double cursor = 0.0;
    for (size_t i = 0; i < expected.size(); ++i) {
        const PassTiming& t = run.compile.pass_timings[i];
        EXPECT_EQ(t.pass_name, expected[i]);
        // Offsets are relative to Compile() start and passes run
        // back-to-back: each span begins at or after the previous end.
        EXPECT_GE(t.start_seconds, cursor);
        EXPECT_GE(t.end_seconds, t.start_seconds);
        EXPECT_GT(t.instructions_before, 0);
        EXPECT_GT(t.instructions_after, 0);
        cursor = t.end_seconds;
    }
}

TEST(TraceGoldenTest, SimulatorEventsAreWellFormed)
{
    TracedRun run = RunTraced();
    ASSERT_FALSE(run.sim.trace.empty());
    int64_t in_flight = 0;
    int64_t collectives = 0;
    for (const TraceEvent& ev : run.sim.trace) {
        EXPECT_FALSE(ev.label.empty());
        EXPECT_GE(ev.end_seconds, ev.start_seconds) << ev.label;
        EXPECT_GE(ev.start_seconds, 0.0) << ev.label;
        switch (ev.kind) {
          case TraceKind::kTransferInFlight:
              ++in_flight;
              EXPECT_NE(ev.label.find("collective-permute-start"),
                        std::string::npos)
                  << ev.label;
              break;
          case TraceKind::kTransferWait:
              EXPECT_NE(ev.label.find("collective-permute-done"),
                        std::string::npos)
                  << ev.label;
              break;
          case TraceKind::kCollective:
              ++collectives;
              break;
          case TraceKind::kCompute:
              break;
        }
    }
    // Every async Start issued by the schedule shows up as exactly one
    // in-flight span, and blocking collectives match the sim counters.
    EXPECT_EQ(in_flight, run.sim.num_async_transfers);
    EXPECT_EQ(collectives, run.sim.num_blocking_collectives);
    EXPECT_GT(in_flight, 0);  // the forced pipeline decomposed something
}

TEST(TraceGoldenTest, EveryDoneWaitNestsInsideAnInFlightWindow)
{
    TracedRun run = RunTraced();
    struct Window {
        double begin;
        double end;
    };
    std::vector<Window> windows;
    for (const TraceEvent& ev : run.sim.trace) {
        if (ev.kind == TraceKind::kTransferInFlight) {
            windows.push_back({ev.start_seconds, ev.end_seconds});
        }
    }
    // In-flight spans cover Start issue .. arrival, so a stall at the
    // matching Done can never poke outside every window (the invariant
    // the overlap report's hidden = total − exposed arithmetic needs).
    constexpr double kTol = 1e-12;
    for (const TraceEvent& ev : run.sim.trace) {
        if (ev.kind != TraceKind::kTransferWait) continue;
        bool contained = false;
        for (const Window& w : windows) {
            if (ev.start_seconds >= w.begin - kTol &&
                ev.end_seconds <= w.end + kTol) {
                contained = true;
                break;
            }
        }
        EXPECT_TRUE(contained)
            << ev.label << " [" << ev.start_seconds << ", "
            << ev.end_seconds << ") escapes every in-flight window";
    }
}

TEST(TraceGoldenTest, SimulatorEventNamesMatchGoldenList)
{
    TracedRun run = RunTraced();
    std::set<std::string> names;
    for (const TraceEvent& ev : run.sim.trace) {
        names.insert(std::string(KindName(ev.kind)) + " " + ev.label);
    }

    if (std::getenv("OVERLAP_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(kGoldenPath);
        ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
        for (const std::string& name : names) out << name << "\n";
        GTEST_SKIP() << "regenerated " << kGoldenPath;
    }

    std::ifstream in(kGoldenPath);
    ASSERT_TRUE(in.good())
        << "missing " << kGoldenPath
        << " — run with OVERLAP_REGEN_GOLDEN=1 to create it";
    std::set<std::string> golden;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) golden.insert(line);
    }
    // Set comparison with named diffs: schema drift should say exactly
    // which event appeared or vanished.
    for (const std::string& name : names) {
        EXPECT_TRUE(golden.count(name) > 0)
            << "event not in golden list (regenerate with "
               "OVERLAP_REGEN_GOLDEN=1 if intentional): "
            << name;
    }
    for (const std::string& name : golden) {
        EXPECT_TRUE(names.count(name) > 0)
            << "golden event missing from trace: " << name;
    }
}

TEST(TraceGoldenTest, ChannelSpansNestInsideDevicePrograms)
{
    TracedRun run = RunTraced();
    const Mesh& mesh = *run.fixture.module->mesh();

    TraceRecorder::Global().Clear();
    SetTracingEnabled(true);
    SetMetricsEnabled(true);
    MetricsRegistry::Global().ResetAll();
    EvalOptions concurrent;
    concurrent.concurrent_devices = true;
    SpmdEvaluator eval(mesh, concurrent);
    auto result =
        eval.Evaluate(*run.fixture.module->entry(), run.fixture.params);
    SetTracingEnabled(false);
    SetMetricsEnabled(false);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::vector<TraceSpan> spans = TraceRecorder::Global().Drain();

    // One program span per device, bounding that device's channel
    // spans.
    std::map<int64_t, TraceSpan> programs;
    for (const TraceSpan& span : spans) {
        if (span.category == "device_program") {
            EXPECT_EQ(programs.count(span.lane), 0u);
            programs[span.lane] = span;
        }
    }
    EXPECT_EQ(static_cast<int64_t>(programs.size()), mesh.num_devices());

    // Every exchange instruction appears once per device, with at least
    // one leader (a group's first member computes), the other group
    // members waiting, and any device outside every channel recorded as
    // a pure send.
    std::map<std::string, int64_t> per_name;
    std::map<std::string, int64_t> leaders;
    std::map<std::string, std::set<int64_t>> lanes;
    for (const TraceSpan& span : spans) {
        const bool leader = span.category == "channel_leader";
        if (!leader && span.category != "channel_wait" &&
            span.category != "channel_send") {
            continue;
        }
        ++per_name[span.name];
        if (leader) ++leaders[span.name];
        EXPECT_TRUE(lanes[span.name].insert(span.lane).second)
            << span.name << " recorded twice on device " << span.lane;
        ASSERT_EQ(programs.count(span.lane), 1u);
        const TraceSpan& program = programs[span.lane];
        EXPECT_GE(span.start_seconds, program.start_seconds)
            << span.name;
        EXPECT_LE(span.end_seconds, program.end_seconds) << span.name;
    }
    ASSERT_FALSE(per_name.empty());
    for (const auto& [name, count] : per_name) {
        EXPECT_EQ(count, mesh.num_devices()) << name;
        // Group collectives elect a leader per replica group; permutes
        // are pure point-to-point sends with no leader at all.
        if (name.find("permute") == std::string::npos) {
            EXPECT_GE(leaders[name], 1) << name;
        } else {
            EXPECT_EQ(leaders[name], 0) << name;
        }
    }

    // The channel metrics moved in lock-step with the spans.
    std::string metrics = MetricsRegistry::Global().SnapshotJson();
    EXPECT_NE(metrics.find("evaluator.channel_total"),
              std::string::npos)
        << metrics;

    // And the unified export names all three processes.
    UnifiedTrace unified;
    unified.passes = run.compile.pass_timings;
    unified.sim = &run.sim;
    unified.evaluator_spans = std::move(spans);
    std::string json = UnifiedTraceToChromeJson(unified);
    EXPECT_NE(json.find("\"compiler\""), std::string::npos);
    EXPECT_NE(json.find("\"simulator:"), std::string::npos);
    EXPECT_NE(json.find("\"spmd_evaluator\""), std::string::npos);
}

}  // namespace
}  // namespace overlap
