#include <gtest/gtest.h>

#include "hlo/verifier.h"
#include "models/model_config.h"
#include "models/step_builder.h"

namespace overlap {
namespace {

int64_t
CountOps(const HloComputation& comp, HloOpcode opcode)
{
    int64_t count = 0;
    for (const HloInstruction* instr : comp.instructions()) {
        if (instr->opcode() == opcode) ++count;
    }
    return count;
}

TEST(ModelConfigTest, Table1MatchesThePaper)
{
    auto models = Table1Models();
    ASSERT_EQ(models.size(), 6u);
    const ModelConfig* gpt = FindModel("GPT_1T");
    ASSERT_NE(gpt, nullptr);
    EXPECT_EQ(gpt->num_layers, 142);
    EXPECT_EQ(gpt->model_dim, 24576);
    EXPECT_EQ(gpt->ff_dim, 98304);
    EXPECT_EQ(gpt->batch_size, 4096);
    EXPECT_EQ(gpt->num_chips, 2048);
    const ModelConfig* glam = FindModel("GLaM_1T");
    ASSERT_NE(glam, nullptr);
    EXPECT_EQ(glam->num_experts, 64);
    EXPECT_EQ(glam->kind, ModelKind::kMoe);
    const ModelConfig* bigssl = FindModel("BigSSL_10B");
    ASSERT_NE(bigssl, nullptr);
    EXPECT_EQ(bigssl->mesh_y, 8);  // 1-D partitioning of size 8
}

TEST(ModelConfigTest, Table2IsTheWeakScalingFamily)
{
    auto models = Table2GptModels();
    ASSERT_EQ(models.size(), 6u);
    EXPECT_EQ(models.front().name, "GPT_32B");
    EXPECT_EQ(models.front().num_chips, 64);
    EXPECT_EQ(models.back().name, "GPT_1T");
    EXPECT_EQ(models.back().num_chips, 2048);
    for (const ModelConfig& m : models) {
        EXPECT_EQ(m.mesh_x * m.mesh_y, m.num_chips) << m.name;
        EXPECT_EQ(m.num_heads() * m.head_dim, m.model_dim) << m.name;
        EXPECT_EQ(m.num_heads() % m.mesh_x, 0) << m.name;
        EXPECT_EQ(m.batch_size % m.mesh_y, 0) << m.name;
    }
}

TEST(StepBuilderTest, EveryModelBuildsAndVerifies)
{
    for (const ModelConfig& config : Table1Models()) {
        auto module = BuildLayerStepModule(config);
        ASSERT_TRUE(module.ok()) << config.name;
        EXPECT_TRUE(VerifyModule(**module).ok()) << config.name;
        EXPECT_GT((*module)->entry()->instruction_count(), 20)
            << config.name;
    }
    for (const ModelConfig& config : Table2GptModels()) {
        auto module = BuildLayerStepModule(config);
        ASSERT_TRUE(module.ok()) << config.name;
        EXPECT_TRUE(VerifyModule(**module).ok()) << config.name;
    }
}

TEST(StepBuilderTest, DenseLayerHasTheFigure3CollectiveMix)
{
    auto module = BuildLayerStepModule(*FindModel("GPT_1T"));
    ASSERT_TRUE(module.ok());
    const HloComputation& comp = *(*module)->entry();
    // Forward + backward of a 2-D partitioned dense layer: activation
    // and weight AllGathers plus output/gradient ReduceScatters.
    EXPECT_GE(CountOps(comp, HloOpcode::kAllGather), 8);
    EXPECT_GE(CountOps(comp, HloOpcode::kReduceScatter), 4);
    EXPECT_EQ(CountOps(comp, HloOpcode::kAllToAll), 0);
    EXPECT_GE(CountOps(comp, HloOpcode::kEinsum), 12);
}

TEST(StepBuilderTest, MoeLayerHasAllToAlls)
{
    auto module = BuildLayerStepModule(*FindModel("GLaM_1T"));
    ASSERT_TRUE(module.ok());
    EXPECT_GE(CountOps(*(*module)->entry(), HloOpcode::kAllToAll), 4);
}

TEST(StepBuilderTest, EncoderDecoderHasBackwardAllToAlls)
{
    auto module = BuildLayerStepModule(*FindModel("T5_300B"));
    ASSERT_TRUE(module.ok());
    EXPECT_EQ(CountOps(*(*module)->entry(), HloOpcode::kAllToAll), 2);
}

TEST(StepBuilderTest, SpeechLayerUsesOneDimensionalStrategy)
{
    auto module = BuildLayerStepModule(*FindModel("BigSSL_10B"));
    ASSERT_TRUE(module.ok());
    const HloComputation& comp = *(*module)->entry();
    // Figure 2: weights AllGathered on demand; backward weight grads
    // ReduceScattered along the model axis and AllReduced across the
    // data-parallel replicas.
    EXPECT_GE(CountOps(comp, HloOpcode::kAllGather), 4);
    EXPECT_GE(CountOps(comp, HloOpcode::kReduceScatter), 2);
    EXPECT_GE(CountOps(comp, HloOpcode::kAllReduce), 2);
}

TEST(StepBuilderTest, RejectsInconsistentMesh)
{
    ModelConfig bad = *FindModel("GPT_32B");
    bad.mesh_x = 8;  // 8 * 16 != 64
    EXPECT_FALSE(BuildLayerStepModule(bad).ok());
}

}  // namespace
}  // namespace overlap
