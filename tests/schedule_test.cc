#include <gtest/gtest.h>

#include "hlo/builder.h"
#include "hlo/module.h"
#include "hlo/verifier.h"
#include "passes/async.h"
#include "passes/decompose.h"
#include "passes/schedule.h"
#include "sim/engine.h"

namespace overlap {
namespace {

/** Builds a decomposed, async AG-einsum loop over `n` devices. */
std::unique_ptr<HloModule>
BuildLoopModule(int64_t n, const HardwareSpec& spec)
{
    auto module = std::make_unique<HloModule>("m");
    Mesh mesh(n);
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {1024, 4096}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {4096, 8192}));
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(ag, w, "bf,fh->bh"));
    CostModel cost(spec);
    DecomposeOptions options;
    options.use_cost_model = false;
    options.bidirectional = false;
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    // Not OVERLAP_CHECK: Release builds compile checks out without
    // evaluating the condition, and these calls must run.
    if (!decomposer.Run(comp).ok()) return nullptr;
    if (!CreateAsyncCollectivePermutes(comp).ok()) return nullptr;
    return module;
}

/** True if `sched` places every Start before its Done with at least one
 *  compute unit in between. */
int64_t
CountOverlappedTransfers(const std::vector<HloInstruction*>& sched)
{
    int64_t overlapped = 0;
    for (size_t i = 0; i < sched.size(); ++i) {
        if (sched[i]->opcode() != HloOpcode::kCollectivePermuteStart) {
            continue;
        }
        for (size_t j = i + 1; j < sched.size(); ++j) {
            if (sched[j]->opcode() == HloOpcode::kCollectivePermuteDone &&
                sched[j]->operand(0) == sched[i]) {
                for (size_t k = i + 1; k < j; ++k) {
                    if (sched[k]->opcode() == HloOpcode::kEinsum) {
                        ++overlapped;
                        break;
                    }
                }
                break;
            }
        }
    }
    return overlapped;
}

class SchedulerTest : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(SchedulerTest, ProducesValidTopologicalOrder)
{
    HardwareSpec spec;
    auto module = BuildLoopModule(4, spec);
    CostModel cost(spec);
    ASSERT_TRUE(
        ScheduleComputation(module->entry(), cost, GetParam()).ok());
    EXPECT_TRUE(module->entry()->has_schedule());
    EXPECT_TRUE(VerifyModule(*module).ok());
}

TEST_P(SchedulerTest, RespectsAsyncBudget)
{
    HardwareSpec spec;
    spec.max_in_flight_async = 2;
    auto module = BuildLoopModule(8, spec);
    CostModel cost(spec);
    ASSERT_TRUE(
        ScheduleComputation(module->entry(), cost, GetParam()).ok());
    int64_t in_flight = 0;
    int64_t peak = 0;
    for (const HloInstruction* instr : module->entry()->schedule()) {
        if (instr->opcode() == HloOpcode::kCollectivePermuteStart) {
            ++in_flight;
        }
        if (instr->opcode() == HloOpcode::kCollectivePermuteDone) {
            --in_flight;
        }
        peak = std::max(peak, in_flight);
    }
    EXPECT_LE(peak, 2 + 1);  // the heuristics may exceed by one when forced
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerTest,
                         ::testing::Values(SchedulerKind::kBaselineOnly,
                                           SchedulerKind::kBottomUp,
                                           SchedulerKind::kTopDown),
                         [](const auto& info) {
                             switch (info.param) {
                               case SchedulerKind::kBaselineOnly:
                                   return "baseline";
                               case SchedulerKind::kBottomUp:
                                   return "bottomup";
                               default:
                                   return "topdown";
                             }
                         });

TEST(ScheduleOverlapTest, BottomUpOverlapsEveryTransfer)
{
    HardwareSpec spec;
    auto module = BuildLoopModule(4, spec);
    CostModel cost(spec);
    ASSERT_TRUE(ScheduleComputation(module->entry(), cost,
                                    SchedulerKind::kBottomUp)
                    .ok());
    // 3 transfers in a 4-way loop; each should have an einsum inside its
    // start-done window.
    EXPECT_EQ(CountOverlappedTransfers(module->entry()->schedule()), 3);
}

TEST(ScheduleOverlapTest, TopDownOverlapsEveryTransfer)
{
    HardwareSpec spec;
    auto module = BuildLoopModule(4, spec);
    CostModel cost(spec);
    ASSERT_TRUE(ScheduleComputation(module->entry(), cost,
                                    SchedulerKind::kTopDown)
                    .ok());
    EXPECT_EQ(CountOverlappedTransfers(module->entry()->schedule()), 3);
}

TEST(ScheduleOverlapTest, SchedulersBeatBaselineInSimulation)
{
    HardwareSpec spec;
    CostModel cost(spec);
    double times[3];
    SchedulerKind kinds[] = {SchedulerKind::kBaselineOnly,
                             SchedulerKind::kBottomUp,
                             SchedulerKind::kTopDown};
    for (int i = 0; i < 3; ++i) {
        auto module = BuildLoopModule(8, spec);
        ASSERT_TRUE(
            ScheduleComputation(module->entry(), cost, kinds[i]).ok());
        PodSimulator sim(Mesh(8), spec);
        auto result = sim.Run(*module);
        ASSERT_TRUE(result.ok());
        times[i] = result->step_seconds;
    }
    EXPECT_LT(times[1], times[0]);  // bottom-up beats baseline order
    EXPECT_LT(times[2], times[0]);  // top-down beats baseline order
    // §6.3: bottom-up is at least as good as top-down.
    EXPECT_LE(times[1], times[2] * 1.001);
}

TEST(ScheduleTest, BaselineMemoryOrderIsDeterministic)
{
    HardwareSpec spec;
    auto m1 = BuildLoopModule(4, spec);
    auto m2 = BuildLoopModule(4, spec);
    CostModel cost(spec);
    SchedGraph g1(*m1->entry(), cost);
    SchedGraph g2(*m2->entry(), cost);
    auto o1 = BaselineMemorySchedule(g1);
    auto o2 = BaselineMemorySchedule(g2);
    ASSERT_EQ(o1.size(), o2.size());
    for (size_t i = 0; i < o1.size(); ++i) {
        EXPECT_EQ(o1[i]->id, o2[i]->id);
    }
}

}  // namespace
}  // namespace overlap
