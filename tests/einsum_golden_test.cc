/**
 * Golden suite for the einsum kernels: the vectorized dispatch path
 * (EinsumSpec::Evaluate) must be *bitwise* identical to the scalar
 * reference kernel (EinsumSpec::EvaluateReference) for every spec and
 * shape — the difftest oracle and the evaluator's bit-identical
 * concurrent mode both rest on this invariant.
 *
 * The cases deliberately stress the kernel's blocking seams: run
 * extents that are not multiples of the SIMD width or register tile,
 * output-row counts that leave m-block tails, contracting extents
 * straddling the k-panel size, empty dimensions, unaligned run bases
 * (odd inner extents), and every f32/bf16 dtype combination (the
 * interpreter computes in f32 regardless; dtype must not perturb
 * results).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "tensor/einsum.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace overlap {
namespace {

/// Asserts two tensors carry byte-for-byte identical float payloads.
void
ExpectBitwiseEqual(const Tensor& got, const Tensor& want)
{
    ASSERT_EQ(got.shape(), want.shape());
    ASSERT_EQ(got.num_elements(), want.num_elements());
    if (got.num_elements() == 0) return;
    EXPECT_EQ(0,
              std::memcmp(got.data(), want.data(),
                          static_cast<size_t>(got.num_elements()) *
                              sizeof(float)))
        << "vectorized einsum diverged bitwise from the scalar "
           "reference for shape "
        << got.shape().ToString();
}

/// Runs `spec` on random inputs of the given shapes through both the
/// dispatching Evaluate and the scalar EvaluateReference and asserts
/// bitwise equality.
void
CheckSpec(const std::string& spec_str, const Shape& lhs_shape,
          const Shape& rhs_shape, uint64_t seed)
{
    auto spec = EinsumSpec::Parse(spec_str);
    ASSERT_TRUE(spec.ok()) << spec.status().message();
    Tensor lhs = Tensor::Random(lhs_shape, seed);
    Tensor rhs = Tensor::Random(rhs_shape, seed + 1);
    auto got = spec->Evaluate(lhs, rhs);
    ASSERT_TRUE(got.ok()) << got.status().message();
    auto want = spec->EvaluateReference(lhs, rhs);
    ASSERT_TRUE(want.ok()) << want.status().message();
    ExpectBitwiseEqual(*got, *want);
}

TEST(EinsumGoldenTest, MatmulShapesBitwiseMatchReference)
{
    // (m, k, n) triples covering tiny, register-tile-exact, and
    // panel-straddling extents.
    const int64_t cases[][3] = {
        {1, 1, 1},   {3, 5, 7},    {8, 64, 16},   {24, 16, 24},
        {4, 64, 32}, {33, 17, 9},  {128, 40, 31}, {5, 63, 48},
        {6, 65, 16}, {16, 128, 8}, {2, 129, 40},  {7, 200, 100},
    };
    uint64_t seed = 1;
    for (const auto& c : cases) {
        CheckSpec("bf,fh->bh", Shape({c[0], c[1]}), Shape({c[1], c[2]}),
                  seed++);
    }
}

TEST(EinsumGoldenTest, RunExtentTailsNotDivisibleByVectorWidth)
{
    // n is the contiguous rhs-free run: sweep every residue around the
    // 8-lane SIMD width and the 16-lane register tile so partial
    // vectors and pure-tail runs both execute.
    uint64_t seed = 100;
    for (int64_t n = 1; n <= 19; ++n) {
        CheckSpec("bf,fh->bh", Shape({6, 40}), Shape({40, n}), seed++);
    }
    for (int64_t n : {23, 31, 33, 47, 65}) {
        CheckSpec("bf,fh->bh", Shape({6, 40}), Shape({40, n}), seed++);
    }
}

TEST(EinsumGoldenTest, MBlockTailRows)
{
    // Output-row counts that leave every possible m-block remainder.
    uint64_t seed = 200;
    for (int64_t m = 1; m <= 9; ++m) {
        CheckSpec("bf,fh->bh", Shape({m, 32}), Shape({32, 24}), seed++);
    }
}

TEST(EinsumGoldenTest, ContractingExtentStraddlesKPanels)
{
    uint64_t seed = 300;
    for (int64_t k : {1, 2, 63, 64, 65, 127, 128, 129, 191}) {
        CheckSpec("bf,fh->bh", Shape({5, k}), Shape({k, 17}), seed++);
    }
}

TEST(EinsumGoldenTest, UnalignedRunBases)
{
    // Odd inner extents make successive output/rhs rows start at
    // non-16-byte float offsets, so the SIMD loops see unaligned
    // bases on every row after the first.
    uint64_t seed = 400;
    for (int64_t n : {3, 7, 9, 11, 13, 21}) {
        CheckSpec("bf,fh->bh", Shape({9, 33}), Shape({33, n}), seed++);
    }
}

TEST(EinsumGoldenTest, BatchedAndMultiLabelSpecs)
{
    // Batch dims, multiple free labels on either side, and a
    // transposed output (run == 1, scalar dispatch path).
    CheckSpec("bmk,bkn->bmn", Shape({3, 10, 20}), Shape({3, 20, 12}),
              500);
    CheckSpec("bmk,bkn->bmn", Shape({2, 7, 65}), Shape({2, 65, 5}),
              501);
    CheckSpec("btf,fh->bth", Shape({2, 9, 24}), Shape({24, 18}), 502);
    CheckSpec("abk,kc->abc", Shape({2, 3, 40}), Shape({40, 19}), 503);
    CheckSpec("bf,fh->hb", Shape({12, 40}), Shape({40, 16}), 504);
    CheckSpec("bf,hf->bh", Shape({12, 40}), Shape({16, 40}), 505);
    CheckSpec("bf,f->b", Shape({12, 40}), Shape({40}), 506);
    CheckSpec("f,fh->h", Shape({40}), Shape({40, 24}), 507);
}

TEST(EinsumGoldenTest, EmptyDims)
{
    // Extent-0 contracting dim: every output element is an empty sum,
    // i.e. exactly 0.0f.
    auto spec = EinsumSpec::Parse("bf,fh->bh");
    ASSERT_TRUE(spec.ok());
    Tensor lhs = Tensor::Random(Shape({4, 0}), 600);
    Tensor rhs = Tensor::Random(Shape({0, 6}), 601);
    auto got = spec->Evaluate(lhs, rhs);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->num_elements(), 24);
    for (float v : got->values()) {
        EXPECT_EQ(v, 0.0f);
    }
    ExpectBitwiseEqual(*got, *spec->EvaluateReference(lhs, rhs));

    // Extent-0 free dims: empty outputs on both kernels.
    CheckSpec("bf,fh->bh", Shape({0, 8}), Shape({8, 6}), 602);
    CheckSpec("bf,fh->bh", Shape({4, 8}), Shape({8, 0}), 603);
}

TEST(EinsumGoldenTest, DTypeCombosDoNotPerturbResults)
{
    // The interpreter computes in f32 whatever the declared element
    // type; every f32/bf16 operand combination must produce the same
    // bits as the all-f32 run and as the scalar reference.
    auto spec = EinsumSpec::Parse("bf,fh->bh");
    ASSERT_TRUE(spec.ok());
    const Shape lhs_f32(DType::kF32, {10, 33});
    const Shape rhs_f32(DType::kF32, {33, 21});
    Tensor lhs = Tensor::Random(lhs_f32, 700);
    Tensor rhs = Tensor::Random(rhs_f32, 701);
    auto baseline = spec->Evaluate(lhs, rhs);
    ASSERT_TRUE(baseline.ok());

    for (DType lt : {DType::kF32, DType::kBF16}) {
        for (DType rt : {DType::kF32, DType::kBF16}) {
            Shape ls = lhs_f32;
            ls.set_dtype(lt);
            Shape rs = rhs_f32;
            rs.set_dtype(rt);
            Tensor l(ls, lhs.values());
            Tensor r(rs, rhs.values());
            auto got = spec->Evaluate(l, r);
            ASSERT_TRUE(got.ok()) << got.status().message();
            auto want = spec->EvaluateReference(l, r);
            ASSERT_TRUE(want.ok());
            ExpectBitwiseEqual(*got, *want);
            ASSERT_EQ(got->num_elements(), baseline->num_elements());
            EXPECT_EQ(0, std::memcmp(got->data(), baseline->data(),
                                     static_cast<size_t>(
                                         got->num_elements()) *
                                         sizeof(float)))
                << "dtype combo " << DTypeName(lt) << "/"
                << DTypeName(rt) << " changed einsum bits";
        }
    }
}

TEST(EinsumGoldenTest, LargeShapeSpotCheck)
{
    // One einsum-heavy shape in the perf-gate range; keeps the golden
    // suite honest about the configuration the benchmark leans on.
    CheckSpec("bf,fh->bh", Shape({128, 256}), Shape({256, 128}), 800);
}

}  // namespace
}  // namespace overlap
