/**
 * @file
 * The metrics registry (DESIGN.md §13): instrument semantics, the
 * disabled-by-default no-op contract, registry interning, snapshot
 * shape, and thread safety of concurrent recording.
 */
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/metrics.h"

namespace overlap {
namespace {

/** Flips metrics on for one test and restores the default after. */
class MetricsTest : public ::testing::Test {
  protected:
    void SetUp() override
    {
        SetMetricsEnabled(true);
        MetricsRegistry::Global().ResetAll();
    }
    void TearDown() override
    {
        MetricsRegistry::Global().ResetAll();
        SetMetricsEnabled(false);
    }
};

TEST_F(MetricsTest, CounterCountsAndResets)
{
    Counter c;
    c.Add();
    c.Add(41);
    EXPECT_EQ(c.value(), 42);
    c.Reset();
    EXPECT_EQ(c.value(), 0);
}

TEST_F(MetricsTest, GaugeKeepsLastValue)
{
    Gauge g;
    g.Set(3.0);
    g.Set(-7.5);
    EXPECT_EQ(g.value(), -7.5);
    g.Reset();
    EXPECT_EQ(g.value(), 0.0);
}

TEST_F(MetricsTest, HistogramSummarizesSamples)
{
    Histogram h;
    h.Record(1.0);
    h.Record(2.0);
    h.Record(4.0);
    Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 3);
    EXPECT_DOUBLE_EQ(snap.sum, 7.0);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 4.0);
    EXPECT_NEAR(snap.mean(), 7.0 / 3.0, 1e-12);
    // The quantile is an upper bucket edge: within 2x above the true
    // value and never below it.
    EXPECT_GE(snap.Quantile(0.99), 4.0);
    EXPECT_LE(snap.Quantile(0.99), 8.0);
    EXPECT_GE(snap.Quantile(0.0), 1.0);
    h.Reset();
    EXPECT_EQ(h.snapshot().count, 0);
}

TEST_F(MetricsTest, QuantileInterpolatesWithinBucket)
{
    // 8 samples spread across one bucket [4, 8): interpolation must
    // land strictly inside the bucket, not pin to the upper edge.
    Histogram h;
    for (int i = 0; i < 8; ++i) {
        h.Record(4.0 + 0.5 * static_cast<double>(i));
    }
    Histogram::Snapshot snap = h.snapshot();
    double p50 = snap.p50();
    EXPECT_GT(p50, 4.0);
    EXPECT_LT(p50, 8.0);
    // Rank 4 of 8 -> halfway through the bucket.
    EXPECT_NEAR(p50, 6.0, 1e-12);
    // A one-sided quantile clamps at the observed max, never above.
    EXPECT_LE(snap.p999(), snap.max);
}

TEST_F(MetricsTest, QuantilesAreMonotoneAndClamped)
{
    Histogram h;
    for (int i = 1; i <= 1000; ++i) {
        h.Record(static_cast<double>(i) * 1e-3);  // 1ms .. 1s
    }
    Histogram::Snapshot snap = h.snapshot();
    EXPECT_LE(snap.p50(), snap.p99());
    EXPECT_LE(snap.p99(), snap.p999());
    EXPECT_LE(snap.p999(), snap.max);
    EXPECT_GE(snap.p50(), snap.min);
    // The log2 buckets bound each quantile within 2x of the truth.
    EXPECT_GE(snap.p50(), 0.5 * 0.5);
    EXPECT_LE(snap.p50(), 2.0 * 0.5);
    EXPECT_GE(snap.p999(), 0.5 * 0.999);
}

TEST_F(MetricsTest, QuantileOfSingleSampleIsThatSample)
{
    Histogram h;
    h.Record(3.0);
    Histogram::Snapshot snap = h.snapshot();
    EXPECT_DOUBLE_EQ(snap.p50(), 3.0);
    EXPECT_DOUBLE_EQ(snap.p99(), 3.0);
    EXPECT_DOUBLE_EQ(snap.p999(), 3.0);
    EXPECT_DOUBLE_EQ(h.snapshot().Quantile(0.0), 3.0);
}

TEST_F(MetricsTest, DisabledInstrumentsRecordNothing)
{
    SetMetricsEnabled(false);
    Counter c;
    Gauge g;
    Histogram h;
    c.Add(5);
    g.Set(1.0);
    h.Record(1.0);
    {
        ScopedTimer timer(&h);
    }
    EXPECT_EQ(c.value(), 0);
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(h.snapshot().count, 0);
}

TEST_F(MetricsTest, ScopedTimerRecordsSeconds)
{
    Histogram h;
    {
        ScopedTimer timer(&h);
    }
    Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 1);
    EXPECT_GE(snap.sum, 0.0);
    EXPECT_LT(snap.sum, 10.0);  // an empty scope is not ten seconds
    // A null histogram is an allowed no-op target.
    ScopedTimer null_timer(nullptr);
}

TEST_F(MetricsTest, ScopedTimerSpanningDisableRecordsNothing)
{
    Histogram h;
    {
        ScopedTimer timer(&h);
        SetMetricsEnabled(false);
    }
    EXPECT_EQ(h.snapshot().count, 0);
    SetMetricsEnabled(true);
}

TEST_F(MetricsTest, RegistryInternsStablePointers)
{
    MetricsRegistry registry;
    Counter* c1 = registry.counter("a.count");
    Counter* c2 = registry.counter("a.count");
    EXPECT_EQ(c1, c2);
    EXPECT_NE(registry.counter("b.count"), c1);
    Histogram* h1 = registry.histogram("a.seconds");
    EXPECT_EQ(h1, registry.histogram("a.seconds"));
    Gauge* g1 = registry.gauge("a.bytes");
    EXPECT_EQ(g1, registry.gauge("a.bytes"));
}

TEST_F(MetricsTest, ResetAllZeroesButKeepsRegistrations)
{
    MetricsRegistry registry;
    Counter* c = registry.counter("x");
    Histogram* h = registry.histogram("y");
    c->Add(3);
    h->Record(1.0);
    registry.ResetAll();
    EXPECT_EQ(c->value(), 0);
    EXPECT_EQ(h->snapshot().count, 0);
    EXPECT_EQ(registry.counter("x"), c);  // same instrument, zeroed
}

TEST_F(MetricsTest, SnapshotJsonNamesEveryInstrument)
{
    MetricsRegistry registry;
    registry.counter("sub.count")->Add(2);
    registry.gauge("sub.bytes")->Set(128.0);
    registry.histogram("sub.seconds")->Record(0.5);
    std::string json = registry.SnapshotJson();
    EXPECT_NE(json.find("\"sub.count\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"sub.bytes\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"sub.seconds\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
}

TEST_F(MetricsTest, ConcurrentRecordingLosesNothing)
{
    MetricsRegistry registry;
    Counter* c = registry.counter("threads.count");
    Histogram* h = registry.histogram("threads.seconds");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 1000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([c, h]() {
            for (int i = 0; i < kPerThread; ++i) {
                c->Add();
                h->Record(1.0);
            }
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(c->value(), kThreads * kPerThread);
    EXPECT_EQ(h->snapshot().count, kThreads * kPerThread);
}

}  // namespace
}  // namespace overlap
