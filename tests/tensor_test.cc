#include <gtest/gtest.h>

#include "tensor/einsum.h"
#include "tensor/mesh.h"
#include "tensor/shape.h"
#include "tensor/sharding.h"
#include "tensor/tensor.h"

namespace overlap {
namespace {

TEST(ShapeTest, Basics)
{
    Shape s(DType::kF32, {2, 3, 4});
    EXPECT_EQ(s.rank(), 3);
    EXPECT_EQ(s.num_elements(), 24);
    EXPECT_EQ(s.byte_size(), 96);
    EXPECT_EQ(s.ToString(), "f32[2,3,4]");
}

TEST(ShapeTest, ScalarAndDTypes)
{
    Shape scalar(DType::kBF16, {});
    EXPECT_EQ(scalar.rank(), 0);
    EXPECT_EQ(scalar.num_elements(), 1);
    EXPECT_EQ(scalar.byte_size(), 2);
    EXPECT_EQ(DTypeSize(DType::kF32), 4);
    EXPECT_EQ(DTypeSize(DType::kPred), 1);
}

TEST(ShapeTest, EqualityIgnoresNothing)
{
    Shape a(DType::kF32, {2, 2});
    Shape b(DType::kBF16, {2, 2});
    EXPECT_NE(a, b);
    EXPECT_TRUE(a.SameDims(b));
}

TEST(TensorTest, IotaAndIndexing)
{
    Tensor t = Tensor::Iota(Shape({2, 3}));
    EXPECT_FLOAT_EQ(t.at({0, 0}), 0.0f);
    EXPECT_FLOAT_EQ(t.at({1, 2}), 5.0f);
    t.set({1, 0}, 42.0f);
    EXPECT_FLOAT_EQ(t.at({1, 0}), 42.0f);
}

TEST(TensorTest, SliceAndUpdateSlice)
{
    Tensor t = Tensor::Iota(Shape({4, 4}));
    Tensor s = t.Slice({1, 2}, {2, 2});
    EXPECT_FLOAT_EQ(s.at({0, 0}), 6.0f);
    EXPECT_FLOAT_EQ(s.at({1, 1}), 11.0f);

    Tensor updated = t.UpdateSlice(Tensor::Full(Shape({2, 2}), -1.0f),
                                   {0, 0});
    EXPECT_FLOAT_EQ(updated.at({0, 0}), -1.0f);
    EXPECT_FLOAT_EQ(updated.at({1, 1}), -1.0f);
    EXPECT_FLOAT_EQ(updated.at({2, 2}), 10.0f);
}

TEST(TensorTest, SliceClampsLikeXla)
{
    // XLA DynamicSlice clamps start indices so the slice stays in bounds.
    Tensor t = Tensor::Iota(Shape({4}));
    Tensor s = t.Slice({3}, {2});
    EXPECT_FLOAT_EQ(s.at({0}), 2.0f);
    EXPECT_FLOAT_EQ(s.at({1}), 3.0f);
}

TEST(TensorTest, ConcatenatePadTranspose)
{
    Tensor a = Tensor::Full(Shape({1, 2}), 1.0f);
    Tensor b = Tensor::Full(Shape({1, 2}), 2.0f);
    Tensor c = Tensor::Concatenate({a, b}, 0);
    EXPECT_EQ(c.shape().dims(), (std::vector<int64_t>{2, 2}));
    EXPECT_FLOAT_EQ(c.at({1, 0}), 2.0f);

    Tensor padded = a.Pad({0, 1}, {0, 1}, 9.0f);
    EXPECT_EQ(padded.shape().dims(), (std::vector<int64_t>{1, 4}));
    EXPECT_FLOAT_EQ(padded.at({0, 0}), 9.0f);
    EXPECT_FLOAT_EQ(padded.at({0, 1}), 1.0f);

    Tensor t = Tensor::Iota(Shape({2, 3}));
    Tensor tt = t.Transpose({1, 0});
    EXPECT_EQ(tt.shape().dims(), (std::vector<int64_t>{3, 2}));
    EXPECT_FLOAT_EQ(tt.at({2, 1}), t.at({1, 2}));
}

TEST(TensorTest, AllCloseAndMaxAbsDiff)
{
    Tensor a = Tensor::Iota(Shape({4}));
    Tensor b = a;
    b.set({2}, 2.5f);
    EXPECT_FLOAT_EQ(Tensor::MaxAbsDiff(a, b), 0.5f);
    EXPECT_TRUE(a.AllClose(b, 0.6f));
    EXPECT_FALSE(a.AllClose(b, 0.4f));
}

TEST(TensorTest, RandomIsDeterministic)
{
    Tensor a = Tensor::Random(Shape({8}), 7);
    Tensor b = Tensor::Random(Shape({8}), 7);
    Tensor c = Tensor::Random(Shape({8}), 8);
    EXPECT_TRUE(a.AllClose(b, 0.0f));
    EXPECT_FALSE(a.AllClose(c, 1e-6f));
}

TEST(EinsumTest, ParseClassifiesDims)
{
    auto spec = EinsumSpec::Parse("bf,fh->bh");
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec->KindOf('b'), EinsumDimKind::kLhsFree);
    EXPECT_EQ(spec->KindOf('f'), EinsumDimKind::kContracting);
    EXPECT_EQ(spec->KindOf('h'), EinsumDimKind::kRhsFree);
    EXPECT_EQ(spec->ToString(), "bf,fh->bh");
}

TEST(EinsumTest, BatchDims)
{
    auto spec = EinsumSpec::Parse("bmf,bfh->bmh");
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec->KindOf('b'), EinsumDimKind::kBatch);
    EXPECT_EQ(spec->KindOf('m'), EinsumDimKind::kLhsFree);
    EXPECT_EQ(spec->KindOf('f'), EinsumDimKind::kContracting);
}

TEST(EinsumTest, RejectsMalformedSpecs)
{
    EXPECT_FALSE(EinsumSpec::Parse("bf,fh").ok());
    EXPECT_FALSE(EinsumSpec::Parse("bffh->bh").ok());
    EXPECT_FALSE(EinsumSpec::Parse("bb,bh->bh").ok());
    EXPECT_FALSE(EinsumSpec::Parse("bf,fh->bx").ok());
    // A label present in one input only and absent from the output is a
    // reduction this engine does not support.
    EXPECT_FALSE(EinsumSpec::Parse("bf,fh->h").ok());
}

TEST(EinsumTest, MatmulMatchesManual)
{
    auto spec = EinsumSpec::Parse("mk,kn->mn");
    ASSERT_TRUE(spec.ok());
    Tensor a = Tensor::Iota(Shape({2, 3}));
    Tensor b = Tensor::Iota(Shape({3, 2}));
    auto c = spec->Evaluate(a, b);
    ASSERT_TRUE(c.ok());
    // Row 0 of a = [0,1,2]; column 0 of b = [0,2,4] -> 10.
    EXPECT_FLOAT_EQ(c->at({0, 0}), 10.0f);
    EXPECT_FLOAT_EQ(c->at({0, 1}), 13.0f);
    EXPECT_FLOAT_EQ(c->at({1, 0}), 28.0f);
    EXPECT_FLOAT_EQ(c->at({1, 1}), 40.0f);
}

TEST(EinsumTest, BatchedMatmul)
{
    auto spec = EinsumSpec::Parse("bmk,bkn->bmn");
    ASSERT_TRUE(spec.ok());
    Tensor a = Tensor::Random(Shape({2, 3, 4}), 1);
    Tensor b = Tensor::Random(Shape({2, 4, 5}), 2);
    auto c = spec->Evaluate(a, b);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c->shape().dims(), (std::vector<int64_t>{2, 3, 5}));
    // Check one element against a manual contraction.
    float expect = 0.0f;
    for (int64_t k = 0; k < 4; ++k) {
        expect += a.at({1, 2, k}) * b.at({1, k, 3});
    }
    EXPECT_NEAR(c->at({1, 2, 3}), expect, 1e-5f);
}

TEST(EinsumTest, FlopCount)
{
    auto spec = EinsumSpec::Parse("mk,kn->mn");
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec->FlopCount(Shape({8, 16}), Shape({16, 32})),
              2 * 8 * 16 * 32);
}

TEST(EinsumTest, ShapeMismatchReported)
{
    auto spec = EinsumSpec::Parse("mk,kn->mn");
    ASSERT_TRUE(spec.ok());
    auto bad = spec->InferOutputShape(Shape({2, 3}), Shape({4, 5}));
    EXPECT_FALSE(bad.ok());
}

TEST(MeshTest, CoordsRoundTrip)
{
    Mesh mesh(2, 4);
    EXPECT_EQ(mesh.num_devices(), 8);
    for (int64_t d = 0; d < 8; ++d) {
        EXPECT_EQ(mesh.DeviceAt(mesh.Coords(d)), d);
    }
    EXPECT_EQ(mesh.Coords(5), (std::vector<int64_t>{1, 1}));
}

TEST(MeshTest, GroupsAlongAxes)
{
    Mesh mesh(2, 3);
    auto y_groups = mesh.Groups(1);
    ASSERT_EQ(y_groups.size(), 2u);
    EXPECT_EQ(y_groups[0], (std::vector<int64_t>{0, 1, 2}));
    EXPECT_EQ(y_groups[1], (std::vector<int64_t>{3, 4, 5}));
    auto x_groups = mesh.Groups(0);
    ASSERT_EQ(x_groups.size(), 3u);
    EXPECT_EQ(x_groups[0], (std::vector<int64_t>{0, 3}));
}

TEST(MeshTest, RingNeighborWraps)
{
    Mesh mesh(4);
    EXPECT_EQ(mesh.RingNeighbor(3, 0, 1), 0);
    EXPECT_EQ(mesh.RingNeighbor(0, 0, -1), 3);
    Mesh torus(2, 4);
    EXPECT_EQ(torus.RingNeighbor(4, 1, 1), 5);
    EXPECT_EQ(torus.RingNeighbor(7, 1, 1), 4);
    EXPECT_EQ(torus.RingNeighbor(1, 0, 1), 5);
}

TEST(MeshTest, InferGroupsAxis)
{
    Mesh mesh(2, 4);
    EXPECT_EQ(mesh.InferGroupsAxis(mesh.Groups(0)), 0);
    EXPECT_EQ(mesh.InferGroupsAxis(mesh.Groups(1)), 1);
    EXPECT_EQ(mesh.InferGroupsAxis({{0, 1, 2, 3, 4, 5, 6, 7}}), -1);
}

TEST(ShardingTest, ShardShapeAndOffsets)
{
    Mesh mesh(2, 4);
    Shape global(DType::kF32, {8, 12});
    TensorSharding sharding = TensorSharding::OnDims(2, 0, 0, 1, 1);
    ASSERT_TRUE(sharding.Validate(global, mesh).ok());
    EXPECT_EQ(sharding.ShardShape(global, mesh).dims(),
              (std::vector<int64_t>{4, 3}));
    EXPECT_EQ(sharding.ShardOffsets(global, mesh, 0),
              (std::vector<int64_t>{0, 0}));
    EXPECT_EQ(sharding.ShardOffsets(global, mesh, 6),
              (std::vector<int64_t>{4, 6}));
}

TEST(ShardingTest, ValidationCatchesBadConfigs)
{
    Mesh mesh(2, 4);
    Shape global(DType::kF32, {7, 12});
    // 7 not divisible by 2.
    EXPECT_FALSE(
        TensorSharding::OnDim(2, 0, 0).Validate(global, mesh).ok());
    // Axis out of range.
    EXPECT_FALSE(
        TensorSharding::OnDim(2, 1, 5).Validate(global, mesh).ok());
    // Same mesh axis on two dims.
    EXPECT_FALSE(TensorSharding::OnDims(2, 0, 1, 1, 1)
                     .Validate(Shape(DType::kF32, {8, 12}), mesh)
                     .ok());
    EXPECT_TRUE(TensorSharding::Replicated(2).Validate(global, mesh).ok());
}

}  // namespace
}  // namespace overlap
