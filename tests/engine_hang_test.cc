/**
 * @file
 * The silent-hang class: schedules on which a real runtime would spin
 * forever must terminate with a diagnostic naming the blocked
 * instructions (deliberately malformed schedules are built by attaching
 * a reordered schedule, which only the engine's no-progress check
 * inspects).
 */
#include <gtest/gtest.h>

#include <memory>

#include "hlo/builder.h"
#include "hlo/module.h"
#include "sim/engine.h"

namespace overlap {
namespace {

std::vector<std::pair<int64_t, int64_t>>
RingShift(const Mesh& mesh)
{
    std::vector<std::pair<int64_t, int64_t>> pairs;
    for (int64_t d = 0; d < mesh.num_devices(); ++d) {
        pairs.push_back({d, mesh.RingNeighbor(d, 0, 1)});
    }
    return pairs;
}

TEST(EngineHangTest, DoneScheduledBeforeItsStartIsDiagnosed)
{
    Mesh mesh(4);
    auto module = std::make_unique<HloModule>("m");
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}), "p");
    auto* start = b.CollectivePermuteStart(p, RingShift(mesh));
    auto* done = b.CollectivePermuteDone(start);
    comp->set_root(done);
    // A schedule where the Done waits on a Start that has not been
    // issued — the orphaned-pair / permute-cycle shape.
    comp->set_schedule({p, done, start});

    PodSimulator simulator(mesh, HardwareSpec());
    auto result = simulator.Run(*module);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(result.status().ToString().find("no progress"),
              std::string::npos);
    EXPECT_NE(result.status().ToString().find(done->name()),
              std::string::npos);
}

TEST(EngineHangTest, StartWithoutDoneIsDiagnosed)
{
    Mesh mesh(4);
    auto module = std::make_unique<HloModule>("m");
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}), "p");
    auto* start = b.CollectivePermuteStart(p, RingShift(mesh));
    (void)start;
    comp->set_root(b.Copy(p));

    PodSimulator simulator(mesh, HardwareSpec());
    auto result = simulator.Run(*module);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(result.status().ToString().find("without a matching Done"),
              std::string::npos);
    EXPECT_NE(result.status().ToString().find(start->name()),
              std::string::npos);
}

TEST(EngineHangTest, AsyncBudgetStarvationIsDiagnosed)
{
    Mesh mesh(4);
    auto module = std::make_unique<HloModule>("m");
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}), "p");
    std::vector<HloInstruction*> starts;
    std::vector<HloInstruction*> dones;
    for (int i = 0; i < 3; ++i) {
        starts.push_back(b.CollectivePermuteStart(p, RingShift(mesh)));
    }
    for (HloInstruction* start : starts) {
        dones.push_back(b.CollectivePermuteDone(start));
    }
    comp->set_root(b.Tuple(dones));

    // Every hardware sync flag is held by a Start whose Done is
    // scheduled later: the third Start can never issue.
    HardwareSpec spec;
    spec.max_in_flight_async = 2;
    PodSimulator simulator(mesh, spec);
    auto result = simulator.Run(*module);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(result.status().ToString().find("budget"),
              std::string::npos);
    EXPECT_NE(result.status().ToString().find(starts[2]->name()),
              std::string::npos);

    // Retiring each transfer before the next Start frees the flag: the
    // same program with an interleaved schedule simulates fine.
    std::vector<HloInstruction*> interleaved = {p};
    for (size_t i = 0; i < starts.size(); ++i) {
        interleaved.push_back(starts[i]);
        interleaved.push_back(dones[i]);
    }
    interleaved.push_back(comp->root());
    comp->set_schedule(interleaved);
    auto ok = simulator.Run(*module);
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    EXPECT_EQ(ok->peak_in_flight, 1);
}

/** A ring-permute program plus a fault spec that fails every transfer
 * attempt, guaranteeing retry exhaustion on the first transfer. */
std::unique_ptr<HloModule>
RingPermuteModule(const Mesh& mesh)
{
    auto module = std::make_unique<HloModule>("m");
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}), "p");
    auto* start = b.CollectivePermuteStart(p, RingShift(mesh));
    comp->set_root(b.CollectivePermuteDone(start));
    return module;
}

FaultSpec
AlwaysFailingTransfers()
{
    FaultSpec spec;
    spec.seed = 9;
    spec.transient_failure_probability = 1.0;
    spec.retry.max_transfer_retries = 2;
    return spec;
}

TEST(EngineHangTest, RetryExhaustionEscalatesToWatchdogReport)
{
    Mesh mesh(4);
    auto module = RingPermuteModule(mesh);
    PodSimulator simulator(mesh, HardwareSpec(),
                           FaultModel(AlwaysFailingTransfers()));
    auto outcome = simulator.RunStep(*module, /*step_index=*/3);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(outcome->failed);
    const FailureReport& failure = outcome->failure;
    EXPECT_EQ(failure.cause, FailureCause::kRetryExhaustion);
    EXPECT_GE(failure.dead_link_src, 0);
    EXPECT_GE(failure.dead_link_dst, 0);
    EXPECT_EQ(failure.failed_step, 3);
    EXPECT_EQ(failure.last_completed_step, 2);
    EXPECT_FALSE(failure.blocked_instructions.empty());
    EXPECT_GT(failure.detected_at_seconds,
              failure.last_progress_seconds);
}

TEST(EngineHangTest, ExhaustionRacesWatchdogAtEveryWindowSize)
{
    // Backoff escalation and the no-progress watchdog race: whether the
    // watchdog window is far shorter than one backoff wait, comparable,
    // or far longer, RunStep must terminate with the same structured
    // exhaustion report — never a hang — and detection time must track
    // the window monotonically.
    Mesh mesh(4);
    auto module = RingPermuteModule(mesh);
    double previous_detected = -1.0;
    for (double window : {1e-7, 25e-6, 5e-3, 10.0}) {
        FaultSpec spec = AlwaysFailingTransfers();
        spec.watchdog_timeout_seconds = window;
        PodSimulator simulator(mesh, HardwareSpec(), FaultModel(spec));
        auto outcome = simulator.RunStep(*module, /*step_index=*/0);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        ASSERT_TRUE(outcome->failed) << "window=" << window;
        EXPECT_EQ(outcome->failure.cause,
                  FailureCause::kRetryExhaustion);
        EXPECT_GT(outcome->failure.detected_at_seconds,
                  previous_detected);
        previous_detected = outcome->failure.detected_at_seconds;
    }
}

TEST(EngineHangTest, ExhaustionReportIsDeterministicPerTrial)
{
    Mesh mesh(4);
    auto module = RingPermuteModule(mesh);
    PodSimulator simulator(mesh, HardwareSpec(),
                           FaultModel(AlwaysFailingTransfers()));
    auto a = simulator.RunStep(*module, 0, false, /*trial=*/17);
    auto b = simulator.RunStep(*module, 0, false, /*trial=*/17);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(a->failed);
    ASSERT_TRUE(b->failed);
    EXPECT_EQ(a->failure.ToString(), b->failure.ToString());
}

TEST(EngineHangTest, SubExhaustionTransientsCompleteWithRetryStats)
{
    // Just below the exhaustion threshold the same program completes,
    // with the retries and their backoff visible in the accounting —
    // the boundary between "tail latency" and "declare the link dead".
    Mesh mesh(4);
    auto module = RingPermuteModule(mesh);
    FaultSpec spec;
    spec.seed = 9;
    spec.transient_failure_probability = 0.9;
    spec.retry.max_transfer_retries = 64;
    PodSimulator simulator(mesh, HardwareSpec(), FaultModel(spec));
    // The per-trial draws are deterministic; at 0.9 per-attempt failure
    // some trial in any small window retries at least once.
    bool saw_retries = false;
    for (int64_t trial = 0; trial < 10; ++trial) {
        auto outcome = simulator.RunStep(*module, 0, false, trial);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        ASSERT_FALSE(outcome->failed) << "trial=" << trial;
        EXPECT_EQ(outcome->result.retry.attempts,
                  outcome->result.retry.retries + 1);
        if (outcome->result.retry.retries > 0) {
            EXPECT_GT(outcome->result.retry.backoff_seconds, 0.0);
            saw_retries = true;
        }
    }
    EXPECT_TRUE(saw_retries);
}

TEST(EngineHangTest, HealthySchedulesStillSimulate)
{
    Mesh mesh(4);
    auto module = std::make_unique<HloModule>("m");
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}), "p");
    auto* start = b.CollectivePermuteStart(p, RingShift(mesh));
    auto* done = b.CollectivePermuteDone(start);
    comp->set_root(done);

    PodSimulator simulator(mesh, HardwareSpec());
    auto result = simulator.Run(*module);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->step_seconds, 0.0);
}

}  // namespace
}  // namespace overlap
