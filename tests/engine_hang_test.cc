/**
 * @file
 * The silent-hang class: schedules on which a real runtime would spin
 * forever must terminate with a diagnostic naming the blocked
 * instructions (deliberately malformed schedules are built by attaching
 * a reordered schedule, which only the engine's no-progress check
 * inspects).
 */
#include <gtest/gtest.h>

#include <memory>

#include "hlo/builder.h"
#include "hlo/module.h"
#include "sim/engine.h"

namespace overlap {
namespace {

std::vector<std::pair<int64_t, int64_t>>
RingShift(const Mesh& mesh)
{
    std::vector<std::pair<int64_t, int64_t>> pairs;
    for (int64_t d = 0; d < mesh.num_devices(); ++d) {
        pairs.push_back({d, mesh.RingNeighbor(d, 0, 1)});
    }
    return pairs;
}

TEST(EngineHangTest, DoneScheduledBeforeItsStartIsDiagnosed)
{
    Mesh mesh(4);
    auto module = std::make_unique<HloModule>("m");
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}), "p");
    auto* start = b.CollectivePermuteStart(p, RingShift(mesh));
    auto* done = b.CollectivePermuteDone(start);
    comp->set_root(done);
    // A schedule where the Done waits on a Start that has not been
    // issued — the orphaned-pair / permute-cycle shape.
    comp->set_schedule({p, done, start});

    PodSimulator simulator(mesh, HardwareSpec());
    auto result = simulator.Run(*module);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(result.status().ToString().find("no progress"),
              std::string::npos);
    EXPECT_NE(result.status().ToString().find(done->name()),
              std::string::npos);
}

TEST(EngineHangTest, StartWithoutDoneIsDiagnosed)
{
    Mesh mesh(4);
    auto module = std::make_unique<HloModule>("m");
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}), "p");
    auto* start = b.CollectivePermuteStart(p, RingShift(mesh));
    (void)start;
    comp->set_root(b.Copy(p));

    PodSimulator simulator(mesh, HardwareSpec());
    auto result = simulator.Run(*module);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(result.status().ToString().find("without a matching Done"),
              std::string::npos);
    EXPECT_NE(result.status().ToString().find(start->name()),
              std::string::npos);
}

TEST(EngineHangTest, AsyncBudgetStarvationIsDiagnosed)
{
    Mesh mesh(4);
    auto module = std::make_unique<HloModule>("m");
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}), "p");
    std::vector<HloInstruction*> starts;
    std::vector<HloInstruction*> dones;
    for (int i = 0; i < 3; ++i) {
        starts.push_back(b.CollectivePermuteStart(p, RingShift(mesh)));
    }
    for (HloInstruction* start : starts) {
        dones.push_back(b.CollectivePermuteDone(start));
    }
    comp->set_root(b.Tuple(dones));

    // Every hardware sync flag is held by a Start whose Done is
    // scheduled later: the third Start can never issue.
    HardwareSpec spec;
    spec.max_in_flight_async = 2;
    PodSimulator simulator(mesh, spec);
    auto result = simulator.Run(*module);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(result.status().ToString().find("budget"),
              std::string::npos);
    EXPECT_NE(result.status().ToString().find(starts[2]->name()),
              std::string::npos);

    // Retiring each transfer before the next Start frees the flag: the
    // same program with an interleaved schedule simulates fine.
    std::vector<HloInstruction*> interleaved = {p};
    for (size_t i = 0; i < starts.size(); ++i) {
        interleaved.push_back(starts[i]);
        interleaved.push_back(dones[i]);
    }
    interleaved.push_back(comp->root());
    comp->set_schedule(interleaved);
    auto ok = simulator.Run(*module);
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    EXPECT_EQ(ok->peak_in_flight, 1);
}

TEST(EngineHangTest, HealthySchedulesStillSimulate)
{
    Mesh mesh(4);
    auto module = std::make_unique<HloModule>("m");
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}), "p");
    auto* start = b.CollectivePermuteStart(p, RingShift(mesh));
    auto* done = b.CollectivePermuteDone(start);
    comp->set_root(done);

    PodSimulator simulator(mesh, HardwareSpec());
    auto result = simulator.Run(*module);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->step_seconds, 0.0);
}

}  // namespace
}  // namespace overlap
