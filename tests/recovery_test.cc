/**
 * @file
 * Elastic recovery runtime (DESIGN.md §11): checkpoint round-trips,
 * survivor-mesh planning, watchdog failure reports, mid-step chip death
 * at each phase of the unrolled decomposed loop, and the difftest
 * closure — a recovered run's final state matches a never-failed run on
 * the survivor mesh within decomposition tolerance.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "core/pod_runner.h"
#include "core/recovery/checkpoint.h"
#include "core/recovery/recovery_planner.h"
#include "core/recovery/step_program.h"
#include "interp/comparison.h"
#include "models/fault_presets.h"
#include "sim/engine.h"

namespace overlap {
namespace {

/** Spec whose padded extents decompose on both 4- and 3-rings. */
ElasticProgramSpec
SmallSpec()
{
    ElasticProgramSpec spec;
    spec.logical_rows = 8;
    spec.feature = 4;
    spec.data_seed = 77;
    return spec;
}

/** Overlap compiler forced to decompose (the sites are tiny). */
CompilerOptions
ForcedOverlapOptions()
{
    CompilerOptions options;
    options.decompose.use_cost_model = false;
    return options;
}

TEST(CheckpointTest, SerializeRoundTripIsBitwise)
{
    Tensor original = Tensor::Random(Shape({5, 3}), 99);
    original.values()[0] = -0.0f;  // sign of zero must survive
    auto restored =
        CheckpointStore::Deserialize(CheckpointStore::Serialize(original));
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    ASSERT_EQ(restored->shape(), original.shape());
    ASSERT_EQ(restored->values().size(), original.values().size());
    EXPECT_EQ(0, std::memcmp(restored->values().data(),
                             original.values().data(),
                             original.values().size() * sizeof(float)));
}

TEST(CheckpointTest, StoreRestoresLatestSnapshotThroughBytes)
{
    CheckpointStore store(/*interval=*/2);
    EXPECT_FALSE(store.has_checkpoint());
    EXPECT_FALSE(store.Restore().ok());

    Tensor state0 = Tensor::Random(Shape({4, 2}), 1);
    Tensor state2 = Tensor::Random(Shape({4, 2}), 2);
    EXPECT_TRUE(store.MaybeSave(0, state0));
    EXPECT_FALSE(store.MaybeSave(1, state0));  // off-interval
    EXPECT_TRUE(store.MaybeSave(2, state2));
    EXPECT_EQ(store.latest_step(), 2);
    EXPECT_EQ(store.num_saves(), 2);
    EXPECT_GT(store.stored_bytes(), 0);

    auto restored = store.Restore();
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(0, std::memcmp(restored->values().data(),
                             state2.values().data(),
                             state2.values().size() * sizeof(float)));
}

TEST(CheckpointTest, DeserializeRejectsCorruptBytes)
{
    EXPECT_FALSE(CheckpointStore::Deserialize({}).ok());
    std::vector<uint8_t> bytes =
        CheckpointStore::Serialize(Tensor::Random(Shape({3, 3}), 5));
    bytes.pop_back();  // truncate the payload
    EXPECT_FALSE(CheckpointStore::Deserialize(bytes).ok());
}

TEST(CheckpointTest, RestoreRejectsSingleFlippedByte)
{
    CheckpointStore store(/*interval=*/1);
    Tensor state = Tensor::Random(Shape({4, 3}), 21);
    ASSERT_TRUE(store.MaybeSave(0, state));
    ASSERT_TRUE(store.Restore().ok());

    // Flip one payload byte on the stored (serialized) snapshot — the
    // exact path recovery reads — and the trailing FNV-1a checksum must
    // refuse it instead of restoring poisoned state (DESIGN.md §16).
    std::vector<uint8_t>& bytes = store.mutable_latest_bytes();
    bytes[bytes.size() / 2] ^= 0x10;
    auto restored = store.Restore();
    ASSERT_FALSE(restored.ok());
    EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(restored.status().ToString().find("checksum"),
              std::string::npos);

    // Flipping it back restores integrity: the store itself was not
    // invalidated, only the corrupted copy rejected.
    bytes[bytes.size() / 2] ^= 0x10;
    EXPECT_TRUE(store.Restore().ok());
}

TEST(CheckpointTest, RestoreAtOrBeforeRollsPastLatestSnapshot)
{
    CheckpointStore store(/*interval=*/2);
    Tensor state0 = Tensor::Random(Shape({3, 2}), 10);
    Tensor state2 = Tensor::Random(Shape({3, 2}), 11);
    Tensor state4 = Tensor::Random(Shape({3, 2}), 12);
    ASSERT_TRUE(store.MaybeSave(0, state0));
    ASSERT_TRUE(store.MaybeSave(2, state2));
    ASSERT_TRUE(store.MaybeSave(4, state4));

    // SDC rollback restores to the snapshot at or before the corrupted
    // step, not necessarily the latest one.
    EXPECT_EQ(store.StepAtOrBefore(3), 2);
    EXPECT_EQ(store.StepAtOrBefore(1), 0);
    EXPECT_EQ(store.StepAtOrBefore(-1), -1);
    auto rolled = store.RestoreAtOrBefore(3);
    ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
    EXPECT_EQ(0, std::memcmp(rolled->values().data(),
                             state2.values().data(),
                             state2.values().size() * sizeof(float)));

    // Re-saving at step 2 after a rollback drops the stale timeline.
    store.Save(2, state2);
    EXPECT_EQ(store.latest_step(), 2);
}

TEST(RecoveryPlannerTest, ChipDeathShrinksRingAndRemapsFaults)
{
    Mesh mesh(4);
    FaultSpec fault = ChipDeath(/*chip=*/2, /*fail_step=*/1).spec;
    ChipFault straggler;
    straggler.chip = 3;
    straggler.compute_factor = 0.5;
    fault.chip_faults.push_back(straggler);

    FailureReport report;
    report.cause = FailureCause::kChipDeath;
    report.dead_chip = 2;
    auto plan = RecoveryPlanner::PlanSurvivorMesh(mesh, fault, report);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_EQ(plan->mesh.num_devices(), 3);
    EXPECT_EQ(plan->survivors, (std::vector<int64_t>{0, 1, 3}));
    EXPECT_TRUE(plan->ring_parity_changed);
    // The fault that fired is gone; the straggler follows its chip to
    // its new ring position.
    EXPECT_TRUE(plan->fault.permanent_faults.empty());
    ASSERT_EQ(plan->fault.chip_faults.size(), 1u);
    EXPECT_EQ(plan->fault.chip_faults[0].chip, 2);
}

TEST(RecoveryPlannerTest, TwoDMeshDropsHyperplaneAlongLargestAxis)
{
    Mesh mesh(2, 4);
    FailureReport report;
    report.cause = FailureCause::kChipDeath;
    report.dead_chip = mesh.DeviceAt({1, 2});
    auto plan =
        RecoveryPlanner::PlanSurvivorMesh(mesh, FaultSpec(), report);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_EQ(plan->dropped_axis, 1);
    EXPECT_EQ(plan->mesh.axis_size(0), 2);
    EXPECT_EQ(plan->mesh.axis_size(1), 3);
    // Every survivor with y-coordinate 2 on the old mesh is gone.
    for (int64_t old_id : plan->survivors) {
        EXPECT_NE(mesh.Coords(old_id)[1], 2);
    }
    EXPECT_EQ(static_cast<int64_t>(plan->survivors.size()), 6);
}

TEST(RecoveryPlannerTest, LinkDeathEvictsSourceEndpoint)
{
    Mesh mesh(4);
    FailureReport report;
    report.cause = FailureCause::kLinkDeath;
    report.dead_link_src = 1;
    report.dead_link_dst = 0;
    auto plan =
        RecoveryPlanner::PlanSurvivorMesh(mesh, FaultSpec(), report);
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan->survivors, (std::vector<int64_t>{0, 2, 3}));
}

TEST(RecoveryPlannerTest, RefusesToShrinkBelowTwoDevices)
{
    Mesh mesh(2);
    FailureReport report;
    report.cause = FailureCause::kChipDeath;
    report.dead_chip = 0;
    auto plan =
        RecoveryPlanner::PlanSurvivorMesh(mesh, FaultSpec(), report);
    EXPECT_FALSE(plan.ok());
    EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StepProgramTest, LogicalStateIsMeshIndependent)
{
    ElasticProgramSpec spec = SmallSpec();
    const int64_t steps = 4;
    Tensor final_states[2];
    int64_t rings[2] = {4, 3};  // 3 forces re-padding (8 -> 9 rows)
    for (int i = 0; i < 2; ++i) {
        Mesh mesh(rings[i]);
        auto program = BuildElasticProgram(spec, mesh,
                                           ForcedOverlapOptions(),
                                           InitialElasticState(spec));
        ASSERT_TRUE(program.ok()) << program.status().ToString();
        for (int64_t s = 0; s < steps; ++s) {
            ASSERT_TRUE(AdvanceElasticState(&program.value()).ok());
        }
        auto state = LogicalElasticState(*program);
        ASSERT_TRUE(state.ok());
        final_states[i] = std::move(state).value();
    }
    double tolerance =
        EquivalenceTolerance(DType::kF32, PaddedRows(spec.logical_rows, 4)) *
        static_cast<double>(steps);
    OutputComparison cmp = CompareOutputs(
        {final_states[0]}, {final_states[1]}, tolerance);
    EXPECT_TRUE(cmp.equal) << cmp.ToString();
}

TEST(RecoveryTest, WatchdogReportsChipDeathWithBlockedInstructions)
{
    ElasticProgramSpec spec = SmallSpec();
    Mesh mesh(4);
    CompilerOptions options = ForcedOverlapOptions();
    options.fault = ChipDeath(/*chip=*/1, /*fail_step=*/0).spec;
    auto program = BuildElasticProgram(spec, mesh, options,
                                       InitialElasticState(spec));
    ASSERT_TRUE(program.ok()) << program.status().ToString();

    PodSimulator simulator(mesh, options.hardware,
                           FaultModel(options.fault));
    auto outcome = simulator.RunStep(*program->module, /*step_index=*/0);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(outcome->failed);
    const FailureReport& failure = outcome->failure;
    EXPECT_EQ(failure.cause, FailureCause::kChipDeath);
    EXPECT_EQ(failure.dead_chip, 1);
    EXPECT_EQ(failure.failed_step, 0);
    EXPECT_EQ(failure.last_completed_step, -1);
    EXPECT_FALSE(failure.blocked_instructions.empty());
    EXPECT_GT(failure.detected_at_seconds, failure.last_progress_seconds);
    EXPECT_NE(failure.ToString().find("chip 1"), std::string::npos);

    // Run() has no recovery path: the report surfaces as an error.
    auto run = simulator.Run(*program->module);
    EXPECT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);
}

/**
 * Chip death lands at a given fraction of the healthy step time —
 * prologue, steady state, or epilogue of the unrolled decomposed loop —
 * and the elastic loop must recover from all of them.
 */
class ChipDeathPhaseTest : public ::testing::TestWithParam<double> {};

TEST_P(ChipDeathPhaseTest, RecoversFromMidStepChipDeath)
{
    ElasticProgramSpec spec = SmallSpec();
    Mesh mesh(4);
    CompilerOptions healthy = ForcedOverlapOptions();
    auto program = BuildElasticProgram(spec, mesh, healthy,
                                       InitialElasticState(spec));
    ASSERT_TRUE(program.ok());
    EXPECT_GT(program->compile.decompose.total_decomposed(), 0);
    PodSimulator simulator(mesh, healthy.hardware, FaultModel());
    auto healthy_run = simulator.Run(*program->module);
    ASSERT_TRUE(healthy_run.ok());
    double step_time = healthy_run->step_seconds;
    ASSERT_GT(step_time, 0.0);

    ElasticRunOptions options;
    options.num_steps = 6;
    options.checkpoint_interval = 2;
    options.program = spec;
    options.compiler = ForcedOverlapOptions();
    options.compiler.fault =
        ChipDeath(/*chip=*/1, /*fail_step=*/3,
                  /*fail_time_seconds=*/GetParam() * step_time)
            .spec;
    auto report = RunElasticTraining(mesh, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->recovery.failed);
    EXPECT_TRUE(report->recovery.recovered);
    EXPECT_EQ(report->final_mesh.num_devices(), 3);
    EXPECT_GE(report->recovery.failed_step, 3);
    EXPECT_LE(report->recovery.checkpoint_step,
              report->recovery.failed_step);
    EXPECT_GT(report->recovery.detection_seconds, 0.0);
    EXPECT_GT(report->recovery.restore_seconds, 0.0);
    EXPECT_GT(report->recovery.replan_seconds, 0.0);
    EXPECT_GT(report->recovery.RecoveryLatencySeconds(), 0.0);
    // Recovery overhead is on top of useful work, never free.
    EXPECT_GT(report->total_seconds,
              report->steps.mean_step_seconds *
                  static_cast<double>(options.num_steps));
}

INSTANTIATE_TEST_SUITE_P(LoopPhases, ChipDeathPhaseTest,
                         ::testing::Values(0.02,   // prologue
                                           0.5,    // steady state
                                           0.95))  // epilogue
    ;

/** The tentpole's difftest closure. */
TEST(RecoveryTest, RecoveredRunMatchesSurvivorBaseline)
{
    ElasticProgramSpec spec = SmallSpec();
    const int64_t num_steps = 6;

    ElasticRunOptions failing;
    failing.num_steps = num_steps;
    failing.checkpoint_interval = 2;
    failing.program = spec;
    failing.compiler = ForcedOverlapOptions();
    failing.compiler.fault =
        ChipDeath(/*chip=*/2, /*fail_step=*/3, /*fail_time=*/1e-6).spec;
    auto recovered = RunElasticTraining(Mesh(4), failing);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ASSERT_TRUE(recovered->recovery.recovered);
    ASSERT_EQ(recovered->final_mesh.num_devices(), 3);

    // The baseline never fails and runs on the survivor ring from
    // step 0. The §5.5 gate re-ran during replanning: ring 3 is odd, so
    // BidirectionalRingEligible fails and the recompiled loops are
    // unidirectional on both sides of the comparison.
    ElasticRunOptions baseline;
    baseline.num_steps = num_steps;
    baseline.checkpoint_interval = 2;
    baseline.program = spec;
    baseline.compiler = ForcedOverlapOptions();
    auto survivor = RunElasticTraining(Mesh(3), baseline);
    ASSERT_TRUE(survivor.ok()) << survivor.status().ToString();
    EXPECT_FALSE(survivor->recovery.failed);

    double tolerance =
        EquivalenceTolerance(DType::kF32,
                             PaddedRows(spec.logical_rows, 4)) *
        static_cast<double>(num_steps);
    OutputComparison cmp = CompareOutputs({survivor->final_state},
                                          {recovered->final_state},
                                          tolerance);
    EXPECT_TRUE(cmp.equal) << cmp.ToString();

    // Recovery latency is reported through the step-trial view.
    StepTrialReport trial = recovered->AsStepTrialReport();
    EXPECT_TRUE(trial.recovery.recovered);
    EXPECT_GT(trial.recovery.RecoveryLatencySeconds(), 0.0);
    EXPECT_NE(trial.ToString().find("recovery"), std::string::npos);
}

TEST(RecoveryTest, LinkDeathRecoversByEvictingEndpoint)
{
    ElasticProgramSpec spec = SmallSpec();
    Mesh mesh(4);
    ElasticRunOptions options;
    options.num_steps = 5;
    options.checkpoint_interval = 2;
    options.program = spec;
    options.compiler = ForcedOverlapOptions();
    options.compiler.fault =
        LinkDeath(mesh, /*axis=*/0, /*fail_step=*/2).spec;
    auto report = RunElasticTraining(mesh, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->recovery.recovered);
    EXPECT_EQ(report->final_mesh.num_devices(), 3);
    EXPECT_NE(report->recovery.failure_summary.find("link"),
              std::string::npos);
}

TEST(RecoveryTest, RetryExhaustionEscalatesToWatchdog)
{
    ElasticProgramSpec spec = SmallSpec();
    Mesh mesh(4);
    CompilerOptions options = ForcedOverlapOptions();
    options.fault.transient_failure_probability = 0.999;
    options.fault.retry.max_transfer_retries = 2;
    options.fault.seed = 13;
    auto program = BuildElasticProgram(spec, mesh, options,
                                       InitialElasticState(spec));
    ASSERT_TRUE(program.ok());
    PodSimulator simulator(mesh, options.hardware,
                           FaultModel(options.fault));
    auto outcome = simulator.RunStep(*program->module, /*step_index=*/0);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(outcome->failed);
    EXPECT_EQ(outcome->failure.cause, FailureCause::kRetryExhaustion);
    EXPECT_GE(outcome->failure.dead_link_src, 0);
    EXPECT_FALSE(outcome->failure.blocked_instructions.empty());
}

TEST(RecoveryTest, SecondPermanentFailureIsFatal)
{
    ElasticProgramSpec spec = SmallSpec();
    ElasticRunOptions options;
    options.num_steps = 8;
    options.checkpoint_interval = 2;
    options.program = spec;
    options.compiler = ForcedOverlapOptions();
    // Chip 3 dies at step 2; chip 0 (same id on the survivor mesh, so
    // the remapped fault survives replanning) dies at step 6.
    options.compiler.fault = ChipDeath(/*chip=*/3, /*fail_step=*/2).spec;
    PermanentFault second;
    second.chip = 0;
    second.fail_step = 6;
    options.compiler.fault.permanent_faults.push_back(second);
    auto report = RunElasticTraining(Mesh(4), options);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(report.status().ToString().find("second permanent"),
              std::string::npos);
}

}  // namespace
}  // namespace overlap
