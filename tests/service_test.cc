/**
 * @file
 * The continuous-operation pod service (DESIGN.md §14): deterministic
 * open-loop arrivals, priority-EDF admission-queue semantics, SLO
 * accounting conservation laws, load shedding under overload, and
 * elastic fault recovery under load.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/service/pod_service.h"
#include "models/fault_presets.h"

namespace overlap {
namespace {

ArrivalSpec
LightArrivals()
{
    ArrivalSpec arrivals;
    arrivals.seed = 21;
    arrivals.duration_seconds = 0.05;
    arrivals.inference_rate_hz = 1000.0;
    arrivals.training_rate_hz = 400.0;
    arrivals.inference_slo_seconds = 0.05;
    return arrivals;
}

TEST(RequestQueueTest, ArrivalsAreDeterministicSortedAndStamped)
{
    ArrivalSpec spec;
    spec.seed = 5;
    spec.duration_seconds = 1.0;
    spec.inference_rate_hz = 200.0;
    spec.training_rate_hz = 50.0;
    spec.inference_slo_seconds = 0.01;

    auto a = GenerateArrivals(spec);
    auto b = GenerateArrivals(spec);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_GT(a.size(), 0u);
    int64_t inference = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, static_cast<int64_t>(i));
        EXPECT_EQ(a[i].job, b[i].job);
        EXPECT_DOUBLE_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
        EXPECT_LT(a[i].arrival_seconds, spec.duration_seconds);
        if (i > 0) {
            EXPECT_GE(a[i].arrival_seconds, a[i - 1].arrival_seconds);
        }
        if (a[i].job == JobClass::kInference) {
            ++inference;
            EXPECT_DOUBLE_EQ(
                a[i].deadline_seconds,
                a[i].arrival_seconds + spec.inference_slo_seconds);
        } else {
            // No training SLO configured: deadline stays infinite.
            EXPECT_TRUE(std::isinf(a[i].deadline_seconds));
        }
    }
    // Both classes actually arrive, inference ~4x as often.
    int64_t training = static_cast<int64_t>(a.size()) - inference;
    EXPECT_GT(training, 0);
    EXPECT_GT(inference, 2 * training);

    // A different seed reshuffles the arrival times.
    spec.seed = 6;
    auto c = GenerateArrivals(spec);
    bool any_diff = c.size() != a.size();
    for (size_t i = 0; !any_diff && i < a.size(); ++i) {
        any_diff = a[i].arrival_seconds != c[i].arrival_seconds;
    }
    EXPECT_TRUE(any_diff);
}

TEST(RequestQueueTest, ServiceOrderIsPriorityThenDeadline)
{
    AdmissionQueue queue(8);
    ServiceRequest low_late{/*id=*/0, JobClass::kTraining, 0.0,
                            /*deadline=*/5.0, /*priority=*/0};
    ServiceRequest low_soon{/*id=*/1, JobClass::kTraining, 0.0,
                            /*deadline=*/1.0, /*priority=*/0};
    ServiceRequest high_late{/*id=*/2, JobClass::kInference, 0.0,
                             /*deadline=*/9.0, /*priority=*/1};
    ASSERT_TRUE(queue.Admit(low_late));
    ASSERT_TRUE(queue.Admit(low_soon));
    ASSERT_TRUE(queue.Admit(high_late));

    ServiceRequest popped;
    ASSERT_TRUE(queue.Pop(&popped));
    EXPECT_EQ(popped.id, 2);  // highest priority first, despite deadline
    ASSERT_TRUE(queue.Pop(&popped));
    EXPECT_EQ(popped.id, 1);  // then EDF within the priority band
    ASSERT_TRUE(queue.Pop(&popped));
    EXPECT_EQ(popped.id, 0);
    EXPECT_FALSE(queue.Pop(&popped));
}

TEST(RequestQueueTest, AdmissionBoundShedsAndRequeueBypasses)
{
    AdmissionQueue queue(2);
    ServiceRequest r;
    r.priority = 0;
    r.id = 0;
    EXPECT_TRUE(queue.Admit(r));
    r.id = 1;
    EXPECT_TRUE(queue.Admit(r));
    r.id = 2;
    EXPECT_FALSE(queue.Admit(r));  // bounded: the third arrival sheds
    EXPECT_EQ(queue.depth(), 2);
    queue.Requeue(r);  // recovery re-queue bypasses the bound
    EXPECT_EQ(queue.depth(), 3);
}

TEST(RequestQueueTest, ShedToRemovesLowestPriorityFirst)
{
    AdmissionQueue queue(8);
    for (int64_t i = 0; i < 4; ++i) {
        ServiceRequest r;
        r.id = i;
        r.priority = i % 2;  // ids 1, 3 are high priority
        r.deadline_seconds = static_cast<double>(i);
        ASSERT_TRUE(queue.Admit(r));
    }
    auto shed = queue.ShedTo(2);
    ASSERT_EQ(shed.size(), 2u);
    // The back of the service order is low-priority, latest-deadline.
    EXPECT_EQ(shed[0].priority, 0);
    EXPECT_EQ(shed[1].priority, 0);
    ServiceRequest popped;
    ASSERT_TRUE(queue.Pop(&popped));
    EXPECT_EQ(popped.priority, 1);  // survivors are the high-priority ones
}

TEST(RequestQueueTest, DropExpiredRemovesOnlyPastDeadlines)
{
    AdmissionQueue queue(8);
    for (int64_t i = 0; i < 3; ++i) {
        ServiceRequest r;
        r.id = i;
        r.deadline_seconds = static_cast<double>(i);  // 0, 1, 2
        ASSERT_TRUE(queue.Admit(r));
    }
    auto expired = queue.DropExpired(1.5);
    ASSERT_EQ(expired.size(), 2u);
    EXPECT_EQ(queue.depth(), 1);
    ServiceRequest popped;
    ASSERT_TRUE(queue.Pop(&popped));
    EXPECT_EQ(popped.id, 2);
}

TEST(PodServiceTest, LightLoadCompletesEverythingInSlo)
{
    ServiceOptions options;
    options.arrivals = LightArrivals();
    PodService service(Mesh(4), options);
    auto report = service.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    EXPECT_TRUE(report->inference.Consistent());
    EXPECT_TRUE(report->training.Consistent());
    EXPECT_GT(report->inference.arrivals, 0);
    EXPECT_GT(report->training.arrivals, 0);
    // The pod keeps up: nothing shed, nothing late.
    EXPECT_EQ(report->inference.completed, report->inference.arrivals);
    EXPECT_EQ(report->inference.goodput, report->inference.completed);
    EXPECT_EQ(report->inference.slo_violations, 0);
    EXPECT_EQ(report->training.completed, report->training.arrivals);
    EXPECT_TRUE(report->recoveries.empty());
    EXPECT_FALSE(report->overloaded);
    EXPECT_FALSE(report->degraded_blocking);
    EXPECT_EQ(report->final_mesh.num_devices(), 4);
    EXPECT_EQ(report->pod_steps,
              report->inference.completed + report->training.completed);
    // Latency percentiles came off the registry histograms: ordered,
    // positive, bounded by the observed max.
    EXPECT_GT(report->inference.p50_latency_seconds, 0.0);
    EXPECT_LE(report->inference.p50_latency_seconds,
              report->inference.p99_latency_seconds);
    EXPECT_LE(report->inference.p99_latency_seconds,
              report->inference.p999_latency_seconds);
    EXPECT_LE(report->inference.p999_latency_seconds,
              report->inference.max_latency_seconds);
    EXPECT_GE(report->end_seconds, 0.0);
    EXPECT_FALSE(report->metrics_json.empty());
}

TEST(PodServiceTest, RunIsDeterministic)
{
    ServiceOptions options;
    options.arrivals = LightArrivals();
    auto a = PodService(Mesh(4), options).Run();
    auto b = PodService(Mesh(4), options).Run();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->ToJson(), b->ToJson());
}

TEST(PodServiceTest, OverloadShedsCountedNeverSilent)
{
    ServiceOptions options;
    options.arrivals.seed = 3;
    options.arrivals.duration_seconds = 0.02;
    // Far beyond the pod's service rate, with a tiny queue.
    options.arrivals.inference_rate_hz = 60000.0;
    options.arrivals.inference_slo_seconds = 0.01;
    options.max_queue_depth = 8;
    PodService service(Mesh(4), options);
    auto report = service.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    const ClassStats& s = report->inference;
    EXPECT_TRUE(s.Consistent());
    EXPECT_GT(s.completed, 0);
    // Most of the offered load was shed, and every shed is accounted.
    int64_t shed =
        s.shed_at_admission + s.shed_under_backlog + s.shed_expired;
    EXPECT_GT(shed, s.completed);
    EXPECT_EQ(s.arrivals,
              s.completed + shed + 0);  // nothing vanished
    // The admission bound held (no recovery re-queues here).
    EXPECT_LE(report->peak_queue_depth, options.max_queue_depth);
    EXPECT_TRUE(report->recoveries.empty());
}

TEST(PodServiceTest, ChipDeathUnderLoadRecoversOnSurvivorMesh)
{
    ServiceOptions options;
    options.arrivals = LightArrivals();
    // Tight inference SLO: the recovery outage must show up as counted
    // violations/expiries, not silence.
    options.arrivals.inference_slo_seconds = 2e-3;
    options.checkpoint_interval = 3;
    options.compiler.fault = ChipDeath(/*chip=*/1, /*fail_step=*/5).spec;
    PodService service(Mesh(4), options);
    auto report = service.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    ASSERT_EQ(report->recoveries.size(), 1u);
    const ServiceRecovery& recovery = report->recoveries[0];
    EXPECT_GT(recovery.detection_seconds, 0.0);
    EXPECT_GT(recovery.restore_seconds, 0.0);
    EXPECT_GT(recovery.replan_seconds, 0.0);
    EXPECT_GE(recovery.replayed_steps, 0);
    EXPECT_GT(recovery.LatencySeconds(), 0.0);
    EXPECT_NE(recovery.failure_summary.find("chip"), std::string::npos)
        << recovery.failure_summary;

    // The service finished on the shrunk survivor mesh.
    EXPECT_EQ(report->final_mesh.num_devices(), 3);
    EXPECT_TRUE(report->inference.Consistent());
    EXPECT_TRUE(report->training.Consistent());
    EXPECT_GT(report->inference.completed, 0);
    EXPECT_GT(report->training.completed, 0);
    // The outage cost something, and it was counted.
    EXPECT_GT(report->inference.slo_violations +
                  report->inference.shed_expired,
              0);
    EXPECT_FALSE(report->overloaded);
}

TEST(PodServiceTest, FlakyFabricAddsLatencyNotFailures)
{
    ServiceOptions options;
    options.arrivals = LightArrivals();
    options.compiler.fault = FlakyFabric(/*failure_probability=*/0.05).spec;
    PodService service(Mesh(4), options);
    auto report = service.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    EXPECT_TRUE(report->inference.Consistent());
    EXPECT_TRUE(report->training.Consistent());
    EXPECT_GT(report->inference.completed, 0);
    // Transients are retried below the exhaustion threshold: no
    // recovery episodes, the cost is latency only.
    EXPECT_TRUE(report->recoveries.empty());
    EXPECT_EQ(report->final_mesh.num_devices(), 4);
}

TEST(PodServiceTest, ReportJsonCarriesTheAccountingShape)
{
    ServiceOptions options;
    options.arrivals = LightArrivals();
    options.arrivals.duration_seconds = 0.01;
    PodService service(Mesh(4), options);
    auto report = service.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    std::string json = report->ToJson();
    for (const char* key :
         {"\"inference\"", "\"training\"", "\"slo_violations\"",
          "\"shed_at_admission\"", "\"p999_latency_s\"", "\"recoveries\"",
          "\"peak_queue_depth\"", "\"overloaded\"", "\"metrics\"",
          "\"final_mesh\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    EXPECT_FALSE(report->ToString().empty());
}

TEST(PodServiceTest, RejectsNonsenseConfiguration)
{
    ServiceOptions options;
    options.arrivals = LightArrivals();
    options.max_queue_depth = 0;
    auto report = PodService(Mesh(4), options).Run();
    EXPECT_FALSE(report.ok());

    options = ServiceOptions();
    options.arrivals = LightArrivals();
    options.shed_watermark = 1.5;
    EXPECT_FALSE(PodService(Mesh(4), options).Run().ok());

    options = ServiceOptions();
    options.arrivals = LightArrivals();
    options.arrivals.duration_seconds = 0.0;
    EXPECT_FALSE(PodService(Mesh(4), options).Run().ok());
}

}  // namespace
}  // namespace overlap
