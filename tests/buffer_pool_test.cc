/**
 * @file
 * BufferPool contract tests: buffer reuse (hit accounting), no aliasing
 * between live tensors, explicit zero-fill after recycling a dirty
 * buffer, the retained-bytes cap, and the disabled mode.
 */
#include "tensor/buffer_pool.h"

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace overlap {
namespace {

TEST(BufferPoolTest, AcquireAfterReleaseReusesTheBuffer)
{
    BufferPool pool;
    std::vector<float> buffer = pool.Acquire(100);
    const float* block = buffer.data();
    pool.Release(std::move(buffer));
    EXPECT_EQ(pool.stats().pooled, 1);

    std::vector<float> again = pool.Acquire(100);
    EXPECT_EQ(again.size(), 100u);
    EXPECT_EQ(again.data(), block);
    EXPECT_EQ(pool.stats().hits, 1);
}

TEST(BufferPoolTest, HitsServeAnySizeInTheSameBucket)
{
    BufferPool pool;
    pool.Release(pool.Acquire(1000));
    // 700 rounds up to the same power-of-two bucket as 1000.
    std::vector<float> buffer = pool.Acquire(700);
    EXPECT_EQ(buffer.size(), 700u);
    EXPECT_EQ(pool.stats().hits, 1);
    // 5000 is a larger bucket: a miss.
    std::vector<float> big = pool.Acquire(5000);
    EXPECT_EQ(big.size(), 5000u);
    EXPECT_EQ(pool.stats().misses, 2);  // the first Acquire(1000) + this
}

TEST(BufferPoolTest, LiveTensorsNeverAlias)
{
    // Two tensors acquired without an intervening release must own
    // distinct heap blocks, even when shapes match.
    Tensor a(Shape(DType::kF32, {8, 8}));
    Tensor b(Shape(DType::kF32, {8, 8}));
    ASSERT_NE(a.data(), b.data());
    a.data()[0] = 1.0f;
    EXPECT_EQ(b.data()[0], 0.0f);
}

TEST(BufferPoolTest, RecycledDirtyBufferComesBackZeroFilled)
{
    // Dirty a buffer, recycle it, then construct a zero-initialized
    // tensor of the same shape: Tensor(Shape) must zero-fill explicitly
    // because pooled buffers keep their old contents.
    Tensor dirty = Tensor::Full(Shape(DType::kF32, {16, 16}), 7.0f);
    Tensor::Recycle(std::move(dirty));
    Tensor zeros(Shape(DType::kF32, {16, 16}));
    for (int64_t i = 0; i < zeros.shape().num_elements(); ++i) {
        ASSERT_EQ(zeros.data()[i], 0.0f) << "element " << i;
    }
}

TEST(BufferPoolTest, UninitializedReusesRecycledBuffer)
{
    BufferPool& pool = ThreadLocalBufferPool();
    pool.ResetStats();
    Tensor t = Tensor::Uninitialized(Shape(DType::kF32, {32, 32}));
    Tensor::Recycle(std::move(t));
    const int64_t pooled_before = pool.stats().pooled;
    EXPECT_GE(pooled_before, 1);
    Tensor u = Tensor::Uninitialized(Shape(DType::kF32, {32, 32}));
    EXPECT_GE(pool.stats().hits, 1);
}

TEST(BufferPoolTest, RetainedBytesAreCapped)
{
    BufferPool pool(/*max_retained_bytes=*/1024);
    pool.Release(pool.Acquire(128));  // 512 bytes: retained
    EXPECT_GT(pool.retained_bytes(), 0);
    const int64_t retained = pool.retained_bytes();
    pool.Release(pool.Acquire(100000));  // 400KB: over cap, dropped
    EXPECT_EQ(pool.retained_bytes(), retained);
    EXPECT_GE(pool.stats().dropped, 1);
}

TEST(BufferPoolTest, DisabledPoolAlwaysMissesAndDrops)
{
    BufferPool pool;
    pool.set_enabled(false);
    pool.Release(pool.Acquire(100));
    std::vector<float> buffer = pool.Acquire(100);
    EXPECT_EQ(pool.stats().hits, 0);
    EXPECT_EQ(pool.stats().misses, 2);
    EXPECT_EQ(pool.stats().pooled, 0);
}

TEST(BufferPoolTest, HeapAllocCountGrowsOnlyOnMisses)
{
    BufferPool& pool = ThreadLocalBufferPool();
    pool.Clear();
    const int64_t before = TensorHeapAllocCount();
    Tensor t = Tensor::Uninitialized(Shape(DType::kF32, {64}));
    const int64_t after_fresh = TensorHeapAllocCount();
    EXPECT_GE(after_fresh, before + 1);
    Tensor::Recycle(std::move(t));
    Tensor u = Tensor::Uninitialized(Shape(DType::kF32, {64}));
    // The pooled hit must not count as a heap allocation.
    EXPECT_EQ(TensorHeapAllocCount(), after_fresh);
}

}  // namespace
}  // namespace overlap
