/**
 * @file
 * ThreadPool contract tests: stable result ordering under ParallelFor,
 * exception capture/propagation through futures, deterministic per-task
 * seed derivation, and queue draining on destruction.
 */
#include "support/thread_pool.h"

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace overlap {
namespace {

TEST(ThreadPoolTest, ParallelForReturnsResultsInIndexOrder)
{
    ThreadPool pool(4);
    std::vector<int64_t> results =
        pool.ParallelFor(100, [](int64_t i) { return i * i; });
    ASSERT_EQ(results.size(), 100u);
    for (int64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
    }
}

TEST(ThreadPoolTest, ParallelForOrderIsStableAcrossThreadCounts)
{
    auto fn = [](int64_t i) { return i * 3 + 1; };
    ThreadPool one(1);
    ThreadPool many(8);
    EXPECT_EQ(one.ParallelFor(64, fn), many.ParallelFor(64, fn));
}

TEST(ThreadPoolTest, SubmitRunsEveryTaskExactlyOnce)
{
    ThreadPool pool(3);
    std::atomic<int> runs{0};
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.Submit([&runs, i]() {
            ++runs;
            return i;
        }));
    }
    std::set<int> seen;
    for (auto& f : futures) seen.insert(f.get());
    EXPECT_EQ(runs.load(), 50);
    EXPECT_EQ(seen.size(), 50u);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.Submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(future.get(), std::runtime_error);
    // The worker survives a throwing task.
    EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException)
{
    ThreadPool pool(4);
    try {
        pool.ParallelFor(32, [](int64_t i) -> int {
            if (i == 5 || i == 20) {
                throw std::runtime_error(i == 5 ? "first" : "second");
            }
            return 0;
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks)
{
    std::atomic<int> runs{0};
    std::vector<std::future<int>> futures;
    {
        ThreadPool pool(1);
        for (int i = 0; i < 20; ++i) {
            futures.push_back(pool.Submit([&runs]() { return ++runs; }));
        }
    }
    // All futures must be satisfied even though the pool is gone.
    for (auto& f : futures) f.get();
    EXPECT_EQ(runs.load(), 20);
}

TEST(ThreadPoolTest, DeriveTaskSeedIsDeterministicAndSpread)
{
    EXPECT_EQ(DeriveTaskSeed(1, 0), DeriveTaskSeed(1, 0));
    std::set<uint64_t> seeds;
    for (uint64_t i = 0; i < 1000; ++i) {
        seeds.insert(DeriveTaskSeed(42, i));
    }
    EXPECT_EQ(seeds.size(), 1000u);
    // Different base seeds decorrelate the same task index.
    EXPECT_NE(DeriveTaskSeed(1, 7), DeriveTaskSeed(2, 7));
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive)
{
    EXPECT_GE(DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace overlap
