#include <gtest/gtest.h>

#include "hlo/builder.h"
#include "hlo/module.h"
#include "sim/engine.h"
#include "sim/trace_export.h"

namespace overlap {
namespace {

class EngineTest : public ::testing::Test {
  protected:
    HardwareSpec spec_;
};

TEST_F(EngineTest, ComputeOnlyProgramTakesKernelTime)
{
    HloModule module("m");
    module.set_mesh(Mesh(2));
    HloBuilder b(module.AddEntryComputation("main"));
    auto* a = b.Parameter(0, Shape(DType::kBF16, {256, 512}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {512, 256}));
    auto* e = b.Einsum(a, w, "mk,kn->mn");
    module.entry()->set_root(e);
    PodSimulator sim(Mesh(2), spec_);
    auto result = sim.Run(module);
    ASSERT_TRUE(result.ok());
    CostModel cost(spec_);
    EXPECT_NEAR(result->step_seconds, cost.EinsumSeconds(e), 1e-12);
    EXPECT_DOUBLE_EQ(result->exposed_comm_seconds, 0.0);
    EXPECT_NEAR(result->einsum_flops, 2.0 * 256 * 512 * 256, 1.0);
}

TEST_F(EngineTest, BlockingCollectiveIsExposed)
{
    HloModule module("m");
    Mesh mesh(4);
    module.set_mesh(mesh);
    HloBuilder b(module.AddEntryComputation("main"));
    auto* p = b.Parameter(0, Shape(DType::kBF16, {1024, 1024}));
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    module.entry()->set_root(ag);
    PodSimulator sim(mesh, spec_);
    auto result = sim.Run(module);
    ASSERT_TRUE(result.ok());
    CostModel cost(spec_);
    EXPECT_NEAR(result->exposed_comm_seconds,
                cost.BlockingCollectiveSeconds(ag), 1e-12);
    EXPECT_EQ(result->num_blocking_collectives, 1);
}

TEST_F(EngineTest, AsyncTransferHiddenBehindLongCompute)
{
    // Start, long einsum, Done: the transfer should cost nothing.
    HloModule module("m");
    Mesh mesh(2);
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* small = b.Parameter(0, Shape(DType::kBF16, {64, 64}));
    auto* a = b.Parameter(1, Shape(DType::kBF16, {2048, 2048}));
    auto* w = b.Parameter(2, Shape(DType::kBF16, {2048, 2048}));
    auto* start = b.CollectivePermuteStart(small, {{0, 1}, {1, 0}});
    auto* big = b.Einsum(a, w, "mk,kn->mn");
    auto* done = b.CollectivePermuteDone(start);
    auto* both = b.Einsum(done, small, "mk,kn->mn");
    comp->set_root(b.Tuple({big, both}));
    PodSimulator sim(mesh, spec_);
    auto result = sim.Run(module);
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result->exposed_comm_seconds, 0.0);
    EXPECT_EQ(result->num_async_transfers, 1);
}

TEST_F(EngineTest, AsyncTransferExposedWithoutCompute)
{
    HloModule module("m");
    Mesh mesh(2);
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {4096, 4096}));
    auto* start = b.CollectivePermuteStart(p, {{0, 1}, {1, 0}});
    comp->set_root(b.CollectivePermuteDone(start));
    PodSimulator sim(mesh, spec_);
    auto result = sim.Run(module);
    ASSERT_TRUE(result.ok());
    CostModel cost(spec_);
    EXPECT_NEAR(result->exposed_comm_seconds,
                cost.PermuteStepSeconds(p->shape().byte_size()), 1e-12);
}

TEST_F(EngineTest, SameDirectionTransfersSerializeOnTheLink)
{
    // Two concurrent transfers in the same ring direction share one
    // channel: the second arrives one wire-time later.
    HloModule module("m");
    Mesh mesh(4);
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {4096, 4096}));
    auto pairs = std::vector<std::pair<int64_t, int64_t>>{
        {0, 3}, {1, 0}, {2, 1}, {3, 2}};
    auto* s1 = b.CollectivePermuteStart(p, pairs);
    auto* s2 = b.CollectivePermuteStart(p, pairs);
    auto* d1 = b.CollectivePermuteDone(s1);
    auto* d2 = b.CollectivePermuteDone(s2);
    comp->set_root(b.Tuple({d1, d2}));
    PodSimulator sim(mesh, spec_);
    auto result = sim.Run(module);
    ASSERT_TRUE(result.ok());
    double wire = static_cast<double>(p->shape().byte_size()) /
                  spec_.link_bandwidth;
    EXPECT_NEAR(result->step_seconds, 2.0 * wire + spec_.link_latency,
                wire * 0.01);
}

TEST_F(EngineTest, OppositeDirectionTransfersRunConcurrently)
{
    HloModule module("m");
    Mesh mesh(4);
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {4096, 4096}));
    auto left = std::vector<std::pair<int64_t, int64_t>>{
        {0, 3}, {1, 0}, {2, 1}, {3, 2}};
    auto right = std::vector<std::pair<int64_t, int64_t>>{
        {0, 1}, {1, 2}, {2, 3}, {3, 0}};
    auto* s1 = b.CollectivePermuteStart(p, left);
    auto* s2 = b.CollectivePermuteStart(p, right);
    auto* d1 = b.CollectivePermuteDone(s1);
    auto* d2 = b.CollectivePermuteDone(s2);
    comp->set_root(b.Tuple({d1, d2}));
    PodSimulator sim(mesh, spec_);
    auto result = sim.Run(module);
    ASSERT_TRUE(result.ok());
    double wire = static_cast<double>(p->shape().byte_size()) /
                  spec_.link_bandwidth;
    EXPECT_NEAR(result->step_seconds, wire + spec_.link_latency,
                wire * 0.01);
}

TEST_F(EngineTest, MultiHopPermuteChargesEachHop)
{
    HloModule module("m");
    Mesh mesh(8);
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {4096, 4096}));
    // Shift by 2: two ring hops.
    std::vector<std::pair<int64_t, int64_t>> pairs;
    for (int64_t j = 0; j < 8; ++j) pairs.emplace_back(j, (j + 6) % 8);
    auto* start = b.CollectivePermuteStart(p, pairs);
    comp->set_root(b.CollectivePermuteDone(start));
    PodSimulator sim(mesh, spec_);
    auto result = sim.Run(module);
    ASSERT_TRUE(result.ok());
    double wire = static_cast<double>(p->shape().byte_size()) /
                  spec_.link_bandwidth;
    EXPECT_NEAR(result->step_seconds,
                2.0 * wire + 2.0 * spec_.link_latency, wire * 0.01);
}

TEST_F(EngineTest, TraceCoversTheTimeline)
{
    HloModule module("m");
    Mesh mesh(2);
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* a = b.Parameter(0, Shape(DType::kBF16, {512, 512}));
    auto* ag = b.AllGather(a, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(ag, a, "mk,kn->mn"));
    PodSimulator sim(mesh, spec_);
    auto result = sim.Run(module, /*collect_trace=*/true);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->trace.size(), 2u);
    EXPECT_EQ(result->trace[0].kind, TraceKind::kCollective);
    EXPECT_EQ(result->trace[1].kind, TraceKind::kCompute);
    EXPECT_DOUBLE_EQ(result->trace.back().end_seconds,
                     result->step_seconds);
}

TEST_F(EngineTest, EnergyScalesWithTimeAndChips)
{
    HloModule module("m");
    module.set_mesh(Mesh(4));
    HloBuilder b(module.AddEntryComputation("main"));
    auto* a = b.Parameter(0, Shape(DType::kBF16, {512, 512}));
    module.entry()->set_root(b.Einsum(a, a, "mk,kn->mn"));
    PodSimulator sim(Mesh(4), spec_);
    auto result = sim.Run(module);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result->EnergyJoules(spec_, 4),
                result->step_seconds * spec_.chip_power_watts * 4.0,
                1e-12);
}

TEST_F(EngineTest, PeakMemoryCountsLiveBuffers)
{
    // x (alloc) -> a = negate(x) (alloc; x still live: it feeds c)
    // -> c = add(a, x) (alloc; frees a and x).
    HloModule module("m");
    module.set_mesh(Mesh(2));
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* x = b.Parameter(0, Shape(DType::kBF16, {1024}));
    auto* a = b.Negate(x);
    comp->set_root(b.Add(a, x));
    PodSimulator sim(Mesh(2), spec_);
    auto result = sim.Run(module);
    ASSERT_TRUE(result.ok());
    // Peak: x + a + c live at once = 3 buffers of 2 KiB.
    EXPECT_EQ(result->peak_memory_bytes, 3 * 2048);
}

TEST_F(EngineTest, AccumulatorChainKeepsMemoryFlat)
{
    // A chain of DynamicUpdateSlices reuses the accumulator; peak memory
    // must stay O(1) in the chain length.
    HloModule module("m");
    module.set_mesh(Mesh(2));
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* update = b.Parameter(0, Shape(DType::kBF16, {1, 512}));
    HloInstruction* acc = b.Zeros(Shape(DType::kBF16, {8, 512}));
    for (int i = 0; i < 8; ++i) {
        acc = b.DynamicUpdateSliceOnDim(acc, update, 0,
                                        b.ConstantIndex(i));
    }
    comp->set_root(acc);
    PodSimulator sim(Mesh(2), spec_);
    auto result = sim.Run(module);
    ASSERT_TRUE(result.ok());
    // Accumulator (8 KiB) + previous version + update: well under 4
    // accumulator-sizes.
    EXPECT_LT(result->peak_memory_bytes, 4 * 8 * 512 * 2);
}

TEST_F(EngineTest, AntipodalTransfersLoadBalanceAcrossDirections)
{
    // On a 2-ring every hop is antipodal; two concurrent transfers must
    // use the two opposite links rather than queueing on one.
    HloModule module("m");
    Mesh mesh(2);
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {4096, 4096}));
    auto pairs =
        std::vector<std::pair<int64_t, int64_t>>{{0, 1}, {1, 0}};
    auto* s1 = b.CollectivePermuteStart(p, pairs);
    auto* s2 = b.CollectivePermuteStart(p, pairs);
    auto* d1 = b.CollectivePermuteDone(s1);
    auto* d2 = b.CollectivePermuteDone(s2);
    comp->set_root(b.Tuple({d1, d2}));
    PodSimulator sim(mesh, spec_);
    auto result = sim.Run(module);
    ASSERT_TRUE(result.ok());
    double wire = static_cast<double>(p->shape().byte_size()) /
                  spec_.link_bandwidth;
    EXPECT_NEAR(result->step_seconds, wire + spec_.link_latency,
                wire * 0.01);
}

TEST_F(EngineTest, ChromeTraceExportIsWellFormed)
{
    HloModule module("m");
    Mesh mesh(2);
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* a = b.Parameter(0, Shape(DType::kBF16, {512, 512}));
    auto* ag = b.AllGather(a, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(ag, a, "mk,kn->mn"));
    PodSimulator sim(mesh, spec_);
    auto result = sim.Run(module, /*collect_trace=*/true);
    ASSERT_TRUE(result.ok());
    std::string json = TraceToChromeJson(*result, "dev");
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("all-gather"), std::string::npos);
    EXPECT_NE(json.find("einsum"), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"collective\""), std::string::npos);
    // Balanced braces as a cheap well-formedness check.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace overlap
