#include <gtest/gtest.h>

#include "hlo/builder.h"
#include "hlo/module.h"
#include "interp/evaluator.h"
#include "test_util.h"

namespace overlap {
namespace {

using testing_util::ShardTensor;

TEST(EvaluatorTest, GlobalEinsum)
{
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* lhs = b.Parameter(0, Shape({2, 3}));
    auto* rhs = b.Parameter(1, Shape({3, 2}));
    comp->set_root(b.Einsum(lhs, rhs, "mk,kn->mn"));
    auto result = EvaluateGlobal(*comp, {Tensor::Iota(Shape({2, 3})),
                                         Tensor::Iota(Shape({3, 2}))});
    ASSERT_TRUE(result.ok());
    EXPECT_FLOAT_EQ(result->at({0, 0}), 10.0f);
}

TEST(EvaluatorTest, PartitionIdAndAxisIndex)
{
    Mesh mesh(2, 3);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    comp->set_root(b.AxisIndex(1));
    SpmdEvaluator eval(mesh);
    auto result = eval.Evaluate(*comp, {});
    ASSERT_TRUE(result.ok());
    for (int64_t d = 0; d < 6; ++d) {
        EXPECT_FLOAT_EQ((*result)[static_cast<size_t>(d)].ScalarValue(),
                        static_cast<float>(d % 3));
    }
}

TEST(EvaluatorTest, AllGatherConcatenatesInGroupOrder)
{
    Mesh mesh(4);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({1, 2}));
    comp->set_root(b.AllGather(p, 0, mesh.Groups(0)));
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> shards;
    for (int64_t d = 0; d < 4; ++d) {
        shards.push_back(Tensor::Full(Shape({1, 2}),
                                      static_cast<float>(d)));
    }
    auto result = eval.Evaluate(*comp, {shards});
    ASSERT_TRUE(result.ok());
    for (int64_t d = 0; d < 4; ++d) {
        const Tensor& t = (*result)[static_cast<size_t>(d)];
        EXPECT_EQ(t.shape().dims(), (std::vector<int64_t>{4, 2}));
        for (int64_t row = 0; row < 4; ++row) {
            EXPECT_FLOAT_EQ(t.at({row, 0}), static_cast<float>(row));
        }
    }
}

TEST(EvaluatorTest, ReduceScatterSumsAndSlices)
{
    Mesh mesh(2);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({4}));
    comp->set_root(b.ReduceScatter(p, 0, mesh.Groups(0)));
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> inputs = {
        Tensor(Shape({4}), {1, 2, 3, 4}),
        Tensor(Shape({4}), {10, 20, 30, 40}),
    };
    auto result = eval.Evaluate(*comp, {inputs});
    ASSERT_TRUE(result.ok());
    EXPECT_FLOAT_EQ((*result)[0].at({0}), 11.0f);
    EXPECT_FLOAT_EQ((*result)[0].at({1}), 22.0f);
    EXPECT_FLOAT_EQ((*result)[1].at({0}), 33.0f);
    EXPECT_FLOAT_EQ((*result)[1].at({1}), 44.0f);
}

TEST(EvaluatorTest, AllReduceSubgroups)
{
    Mesh mesh(2, 2);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({1}));
    comp->set_root(b.AllReduce(p, mesh.Groups(1)));  // rows {0,1},{2,3}
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> inputs;
    for (int64_t d = 0; d < 4; ++d) {
        inputs.push_back(Tensor(Shape({1}), {static_cast<float>(1 << d)}));
    }
    auto result = eval.Evaluate(*comp, {inputs});
    ASSERT_TRUE(result.ok());
    EXPECT_FLOAT_EQ((*result)[0].at({0}), 3.0f);   // 1 + 2
    EXPECT_FLOAT_EQ((*result)[1].at({0}), 3.0f);
    EXPECT_FLOAT_EQ((*result)[2].at({0}), 12.0f);  // 4 + 8
    EXPECT_FLOAT_EQ((*result)[3].at({0}), 12.0f);
}

TEST(EvaluatorTest, AllToAllTransposesShards)
{
    Mesh mesh(2);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2}));
    comp->set_root(b.AllToAll(p, 0, mesh.Groups(0)));
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> inputs = {Tensor(Shape({2}), {1, 2}),
                                  Tensor(Shape({2}), {3, 4})};
    auto result = eval.Evaluate(*comp, {inputs});
    ASSERT_TRUE(result.ok());
    EXPECT_FLOAT_EQ((*result)[0].at({0}), 1.0f);
    EXPECT_FLOAT_EQ((*result)[0].at({1}), 3.0f);
    EXPECT_FLOAT_EQ((*result)[1].at({0}), 2.0f);
    EXPECT_FLOAT_EQ((*result)[1].at({1}), 4.0f);
}

TEST(EvaluatorTest, CollectivePermuteMovesAndZeroFills)
{
    Mesh mesh(3);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({1}));
    // 0 -> 1, 1 -> 2; device 0 receives nothing.
    comp->set_root(b.CollectivePermute(p, {{0, 1}, {1, 2}}));
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> inputs = {Tensor(Shape({1}), {5}),
                                  Tensor(Shape({1}), {6}),
                                  Tensor(Shape({1}), {7})};
    auto result = eval.Evaluate(*comp, {inputs});
    ASSERT_TRUE(result.ok());
    EXPECT_FLOAT_EQ((*result)[0].at({0}), 0.0f);
    EXPECT_FLOAT_EQ((*result)[1].at({0}), 5.0f);
    EXPECT_FLOAT_EQ((*result)[2].at({0}), 6.0f);
}

TEST(EvaluatorTest, AsyncPermutePairBehavesLikeSync)
{
    Mesh mesh(2);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({1}));
    auto* start = b.CollectivePermuteStart(p, {{0, 1}, {1, 0}});
    comp->set_root(b.CollectivePermuteDone(start));
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> inputs = {Tensor(Shape({1}), {5}),
                                  Tensor(Shape({1}), {6})};
    auto result = eval.Evaluate(*comp, {inputs});
    ASSERT_TRUE(result.ok());
    EXPECT_FLOAT_EQ((*result)[0].at({0}), 6.0f);
    EXPECT_FLOAT_EQ((*result)[1].at({0}), 5.0f);
}

TEST(EvaluatorTest, DynamicSliceUsesPerDeviceIndices)
{
    Mesh mesh(2);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({4}));
    auto* idx = b.Multiply(b.AxisIndex(0), b.ConstantIndex(2));
    comp->set_root(b.DynamicSliceOnDim(p, 0, idx, 2));
    SpmdEvaluator eval(mesh);
    Tensor data(Shape({4}), {1, 2, 3, 4});
    auto result = eval.Evaluate(*comp, {{data}});
    ASSERT_TRUE(result.ok());
    EXPECT_FLOAT_EQ((*result)[0].at({0}), 1.0f);
    EXPECT_FLOAT_EQ((*result)[1].at({0}), 3.0f);
}

TEST(EvaluatorTest, MissingParameterReported)
{
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    comp->set_root(b.Parameter(0, Shape({1})));
    SpmdEvaluator eval((Mesh(1)));
    auto result = eval.Evaluate(*comp, {});
    EXPECT_FALSE(result.ok());
}

TEST(EvaluatorTest, ShardRoundTripHelper)
{
    Mesh mesh(2, 2);
    Tensor global = Tensor::Iota(Shape({4, 4}));
    TensorSharding sharding = TensorSharding::OnDims(2, 0, 0, 1, 1);
    auto shards = ShardTensor(global, sharding, mesh);
    ASSERT_EQ(shards.size(), 4u);
    Tensor back = testing_util::UnshardTensor(shards, global.shape(),
                                              sharding, mesh);
    EXPECT_TRUE(back.AllClose(global, 0.0f));
}

}  // namespace
}  // namespace overlap
