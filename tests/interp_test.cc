#include <gtest/gtest.h>

#include "hlo/builder.h"
#include "hlo/module.h"
#include "interp/comparison.h"
#include "interp/evaluator.h"
#include "test_util.h"

namespace overlap {
namespace {

using testing_util::ShardTensor;

TEST(EvaluatorTest, GlobalEinsum)
{
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* lhs = b.Parameter(0, Shape({2, 3}));
    auto* rhs = b.Parameter(1, Shape({3, 2}));
    comp->set_root(b.Einsum(lhs, rhs, "mk,kn->mn"));
    auto result = EvaluateGlobal(*comp, {Tensor::Iota(Shape({2, 3})),
                                         Tensor::Iota(Shape({3, 2}))});
    ASSERT_TRUE(result.ok());
    EXPECT_FLOAT_EQ(result->at({0, 0}), 10.0f);
}

TEST(EvaluatorTest, PartitionIdAndAxisIndex)
{
    Mesh mesh(2, 3);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    comp->set_root(b.AxisIndex(1));
    SpmdEvaluator eval(mesh);
    auto result = eval.Evaluate(*comp, {});
    ASSERT_TRUE(result.ok());
    for (int64_t d = 0; d < 6; ++d) {
        EXPECT_FLOAT_EQ((*result)[static_cast<size_t>(d)].ScalarValue(),
                        static_cast<float>(d % 3));
    }
}

TEST(EvaluatorTest, AllGatherConcatenatesInGroupOrder)
{
    Mesh mesh(4);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({1, 2}));
    comp->set_root(b.AllGather(p, 0, mesh.Groups(0)));
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> shards;
    for (int64_t d = 0; d < 4; ++d) {
        shards.push_back(Tensor::Full(Shape({1, 2}),
                                      static_cast<float>(d)));
    }
    auto result = eval.Evaluate(*comp, {shards});
    ASSERT_TRUE(result.ok());
    for (int64_t d = 0; d < 4; ++d) {
        const Tensor& t = (*result)[static_cast<size_t>(d)];
        EXPECT_EQ(t.shape().dims(), (std::vector<int64_t>{4, 2}));
        for (int64_t row = 0; row < 4; ++row) {
            EXPECT_FLOAT_EQ(t.at({row, 0}), static_cast<float>(row));
        }
    }
}

TEST(EvaluatorTest, ReduceScatterSumsAndSlices)
{
    Mesh mesh(2);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({4}));
    comp->set_root(b.ReduceScatter(p, 0, mesh.Groups(0)));
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> inputs = {
        Tensor(Shape({4}), {1, 2, 3, 4}),
        Tensor(Shape({4}), {10, 20, 30, 40}),
    };
    auto result = eval.Evaluate(*comp, {inputs});
    ASSERT_TRUE(result.ok());
    EXPECT_FLOAT_EQ((*result)[0].at({0}), 11.0f);
    EXPECT_FLOAT_EQ((*result)[0].at({1}), 22.0f);
    EXPECT_FLOAT_EQ((*result)[1].at({0}), 33.0f);
    EXPECT_FLOAT_EQ((*result)[1].at({1}), 44.0f);
}

TEST(EvaluatorTest, AllReduceSubgroups)
{
    Mesh mesh(2, 2);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({1}));
    comp->set_root(b.AllReduce(p, mesh.Groups(1)));  // rows {0,1},{2,3}
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> inputs;
    for (int64_t d = 0; d < 4; ++d) {
        inputs.push_back(Tensor(Shape({1}), {static_cast<float>(1 << d)}));
    }
    auto result = eval.Evaluate(*comp, {inputs});
    ASSERT_TRUE(result.ok());
    EXPECT_FLOAT_EQ((*result)[0].at({0}), 3.0f);   // 1 + 2
    EXPECT_FLOAT_EQ((*result)[1].at({0}), 3.0f);
    EXPECT_FLOAT_EQ((*result)[2].at({0}), 12.0f);  // 4 + 8
    EXPECT_FLOAT_EQ((*result)[3].at({0}), 12.0f);
}

TEST(EvaluatorTest, AllToAllTransposesShards)
{
    Mesh mesh(2);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2}));
    comp->set_root(b.AllToAll(p, 0, mesh.Groups(0)));
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> inputs = {Tensor(Shape({2}), {1, 2}),
                                  Tensor(Shape({2}), {3, 4})};
    auto result = eval.Evaluate(*comp, {inputs});
    ASSERT_TRUE(result.ok());
    EXPECT_FLOAT_EQ((*result)[0].at({0}), 1.0f);
    EXPECT_FLOAT_EQ((*result)[0].at({1}), 3.0f);
    EXPECT_FLOAT_EQ((*result)[1].at({0}), 2.0f);
    EXPECT_FLOAT_EQ((*result)[1].at({1}), 4.0f);
}

TEST(EvaluatorTest, CollectivePermuteMovesAndZeroFills)
{
    Mesh mesh(3);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({1}));
    // 0 -> 1, 1 -> 2; device 0 receives nothing.
    comp->set_root(b.CollectivePermute(p, {{0, 1}, {1, 2}}));
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> inputs = {Tensor(Shape({1}), {5}),
                                  Tensor(Shape({1}), {6}),
                                  Tensor(Shape({1}), {7})};
    auto result = eval.Evaluate(*comp, {inputs});
    ASSERT_TRUE(result.ok());
    EXPECT_FLOAT_EQ((*result)[0].at({0}), 0.0f);
    EXPECT_FLOAT_EQ((*result)[1].at({0}), 5.0f);
    EXPECT_FLOAT_EQ((*result)[2].at({0}), 6.0f);
}

TEST(EvaluatorTest, AsyncPermutePairBehavesLikeSync)
{
    Mesh mesh(2);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({1}));
    auto* start = b.CollectivePermuteStart(p, {{0, 1}, {1, 0}});
    comp->set_root(b.CollectivePermuteDone(start));
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> inputs = {Tensor(Shape({1}), {5}),
                                  Tensor(Shape({1}), {6})};
    auto result = eval.Evaluate(*comp, {inputs});
    ASSERT_TRUE(result.ok());
    EXPECT_FLOAT_EQ((*result)[0].at({0}), 6.0f);
    EXPECT_FLOAT_EQ((*result)[1].at({0}), 5.0f);
}

TEST(EvaluatorTest, CollectivePermuteRejectsDuplicateTarget)
{
    Mesh mesh(3);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({1}));
    // Two sources feeding device 2: order-dependent, must be rejected.
    comp->set_root(b.CollectivePermute(p, {{0, 2}, {1, 2}}));
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> inputs(3, Tensor(Shape({1}), {1}));
    auto result = eval.Evaluate(*comp, {inputs});
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("duplicate target"),
              std::string::npos);
}

TEST(EvaluatorTest, CollectivePermuteRejectsDuplicateSource)
{
    Mesh mesh(3);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({1}));
    comp->set_root(b.CollectivePermute(p, {{0, 1}, {0, 2}}));
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> inputs(3, Tensor(Shape({1}), {1}));
    auto result = eval.Evaluate(*comp, {inputs});
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("duplicate source"),
              std::string::npos);
}

TEST(EvaluatorTest, CollectivePermuteRejectsOutOfRangeDevice)
{
    Mesh mesh(2);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({1}));
    comp->set_root(b.CollectivePermute(p, {{0, 5}}));
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> inputs(2, Tensor(Shape({1}), {1}));
    EXPECT_FALSE(eval.Evaluate(*comp, {inputs}).ok());
}

TEST(EvaluatorTest, AsyncStartValidatesPairsLikeSyncOp)
{
    // Start/Done must behave identically to the sync op, including the
    // rejection of duplicate targets.
    Mesh mesh(3);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({1}));
    auto* start = b.CollectivePermuteStart(p, {{0, 2}, {1, 2}});
    comp->set_root(b.CollectivePermuteDone(start));
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> inputs(3, Tensor(Shape({1}), {1}));
    EXPECT_FALSE(eval.Evaluate(*comp, {inputs}).ok());
}

TEST(EvaluatorTest, EvaluateBatchSharesParams)
{
    Mesh mesh(2);
    HloModule add_module("add");
    HloComputation* add_comp = add_module.AddEntryComputation("main");
    {
        HloBuilder b(add_comp);
        auto* p = b.Parameter(0, Shape({1}));
        add_comp->set_root(b.Add(p, p));
    }
    HloModule neg_module("neg");
    HloComputation* neg_comp = neg_module.AddEntryComputation("main");
    {
        HloBuilder b(neg_comp);
        neg_comp->set_root(b.Negate(b.Parameter(0, Shape({1}))));
    }
    SpmdEvaluator eval(mesh);
    std::vector<Tensor> inputs = {Tensor(Shape({1}), {3}),
                                  Tensor(Shape({1}), {4})};
    auto outputs = eval.EvaluateBatch({add_comp, neg_comp}, {inputs});
    ASSERT_TRUE(outputs.ok());
    ASSERT_EQ(outputs->size(), 2u);
    EXPECT_FLOAT_EQ((*outputs)[0][0].at({0}), 6.0f);
    EXPECT_FLOAT_EQ((*outputs)[0][1].at({0}), 8.0f);
    EXPECT_FLOAT_EQ((*outputs)[1][0].at({0}), -3.0f);
    EXPECT_FLOAT_EQ((*outputs)[1][1].at({0}), -4.0f);
}

TEST(ComparisonTest, ToleranceScalesWithDtypeAndReduction)
{
    EXPECT_LT(EquivalenceTolerance(DType::kF32, 16),
              EquivalenceTolerance(DType::kBF16, 16));
    EXPECT_LT(EquivalenceTolerance(DType::kF32, 4),
              EquivalenceTolerance(DType::kF32, 4096));
    EXPECT_EQ(EquivalenceTolerance(DType::kS32, 100), 0.0);
}

TEST(ComparisonTest, CompareOutputsFindsFirstMismatch)
{
    std::vector<Tensor> ref = {Tensor(Shape({2}), {1, 2}),
                               Tensor(Shape({2}), {3, 4})};
    std::vector<Tensor> same = ref;
    OutputComparison ok = CompareOutputs(ref, same, 1e-6);
    EXPECT_TRUE(ok.equal);
    EXPECT_EQ(ok.mismatched_devices, 0);
    EXPECT_EQ(ok.first_mismatch_device, -1);

    std::vector<Tensor> bad = {Tensor(Shape({2}), {1, 2}),
                               Tensor(Shape({2}), {3, 9})};
    OutputComparison cmp = CompareOutputs(ref, bad, 1e-6);
    EXPECT_FALSE(cmp.equal);
    EXPECT_EQ(cmp.mismatched_devices, 1);
    EXPECT_EQ(cmp.first_mismatch_device, 1);
    EXPECT_NEAR(cmp.max_abs_diff, 5.0, 1e-9);
    EXPECT_NE(cmp.ToString().find("MISMATCH"), std::string::npos);
}

TEST(ComparisonTest, ShapeDisagreementIsAMismatch)
{
    std::vector<Tensor> ref = {Tensor(Shape({2}), {1, 2})};
    std::vector<Tensor> other = {Tensor(Shape({3}), {1, 2, 3})};
    OutputComparison cmp = CompareOutputs(ref, other, 1e9);
    EXPECT_FALSE(cmp.equal);
}

TEST(EvaluatorTest, DynamicSliceUsesPerDeviceIndices)
{
    Mesh mesh(2);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({4}));
    auto* idx = b.Multiply(b.AxisIndex(0), b.ConstantIndex(2));
    comp->set_root(b.DynamicSliceOnDim(p, 0, idx, 2));
    SpmdEvaluator eval(mesh);
    Tensor data(Shape({4}), {1, 2, 3, 4});
    auto result = eval.Evaluate(*comp, {{data}});
    ASSERT_TRUE(result.ok());
    EXPECT_FLOAT_EQ((*result)[0].at({0}), 1.0f);
    EXPECT_FLOAT_EQ((*result)[1].at({0}), 3.0f);
}

TEST(EvaluatorTest, MissingParameterReported)
{
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    comp->set_root(b.Parameter(0, Shape({1})));
    SpmdEvaluator eval((Mesh(1)));
    auto result = eval.Evaluate(*comp, {});
    EXPECT_FALSE(result.ok());
}

TEST(EvaluatorTest, ShardRoundTripHelper)
{
    Mesh mesh(2, 2);
    Tensor global = Tensor::Iota(Shape({4, 4}));
    TensorSharding sharding = TensorSharding::OnDims(2, 0, 0, 1, 1);
    auto shards = ShardTensor(global, sharding, mesh);
    ASSERT_EQ(shards.size(), 4u);
    Tensor back = testing_util::UnshardTensor(shards, global.shape(),
                                              sharding, mesh);
    EXPECT_TRUE(back.AllClose(global, 0.0f));
}

}  // namespace
}  // namespace overlap
