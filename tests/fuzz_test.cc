/**
 * @file
 * Randomized end-to-end property tests: random einsum specs, partition
 * counts, gathered sides and option combinations are pushed through the
 * full pipeline (decompose -> async -> fuse -> schedule) and the result
 * is interpreted on the multi-device evaluator against the untouched
 * program. Catches interactions the targeted suites do not enumerate.
 */
#include <gtest/gtest.h>

#include <map>

#include "core/overlap_compiler.h"
#include "hlo/builder.h"
#include "hlo/verifier.h"
#include "interp/evaluator.h"
#include "test_util.h"

namespace overlap {
namespace {

using testing_util::ShardTensor;

/** Deterministic pseudo-random stream. */
class Rng {
  public:
    explicit Rng(uint64_t seed) : state_(seed * 2654435761u + 1) {}

    uint64_t Next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        return state_;
    }
    int64_t Pick(std::initializer_list<int64_t> values)
    {
        auto it = values.begin();
        std::advance(it, static_cast<int64_t>(Next() % values.size()));
        return *it;
    }

  private:
    uint64_t state_;
};

struct FuzzCase {
    std::string spec;
    std::vector<int64_t> lhs_dims;  // label sizes, filled below
    std::vector<int64_t> rhs_dims;
};

class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, RandomScenarioStaysEquivalent)
{
    Rng rng(static_cast<uint64_t>(GetParam()));
    const char* specs[] = {"bf,fh->bh", "bmf,bfh->bmh", "ab,bc->ac",
                           "xsd,dh->xsh"};
    std::string spec_str = specs[rng.Next() % 4];
    auto spec = EinsumSpec::Parse(spec_str);
    ASSERT_TRUE(spec.ok());

    int64_t n = rng.Pick({2, 3, 4, 6});
    Mesh mesh(n);
    int64_t shard = rng.Pick({1, 2, 3});
    bool use_rs = rng.Next() % 3 == 0;

    // Choose the partitioned label: for AllGather any label of the
    // gathered side, for ReduceScatter a free label.
    int64_t side = static_cast<int64_t>(rng.Next() % 2);
    const std::string& side_labels =
        side == 0 ? spec->lhs_labels() : spec->rhs_labels();
    char label = 0;
    for (size_t attempt = 0; attempt < side_labels.size() * 4; ++attempt) {
        char candidate = side_labels[rng.Next() % side_labels.size()];
        EinsumDimKind kind = spec->KindOf(candidate);
        if (use_rs && kind != EinsumDimKind::kLhsFree &&
            kind != EinsumDimKind::kRhsFree) {
            continue;
        }
        label = candidate;
        break;
    }
    if (label == 0) GTEST_SKIP() << "no usable label for this draw";
    if (use_rs) {
        side = spec->KindOf(label) == EinsumDimKind::kLhsFree ? 0 : 1;
    }

    // Global sizes per label.
    std::map<char, int64_t> sizes;
    for (char c : spec->all_labels()) {
        sizes[c] = rng.Pick({2, 3, 4});
    }
    sizes[label] = n * shard;

    auto dims_for = [&](const std::string& labels) {
        std::vector<int64_t> dims;
        for (char c : labels) dims.push_back(sizes.at(c));
        return dims;
    };
    Shape lhs_global(dims_for(spec->lhs_labels()));
    Shape rhs_global(dims_for(spec->rhs_labels()));

    HloModule module("fuzz");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    std::vector<std::vector<Tensor>> params;
    Tensor lhs_data = Tensor::Random(lhs_global, rng.Next());
    Tensor rhs_data = Tensor::Random(rhs_global, rng.Next());

    if (!use_rs) {
        // Shard the gathered operand along `label`, AllGather it back.
        const Shape& gathered = side == 0 ? lhs_global : rhs_global;
        int64_t dim = side == 0 ? spec->LhsDimOf(label)
                                : spec->RhsDimOf(label);
        TensorSharding sharding =
            TensorSharding::OnDim(gathered.rank(), dim, 0);
        auto* p0 = b.Parameter(0, sharding.ShardShape(gathered, mesh));
        auto* p1 =
            b.Parameter(1, side == 0 ? rhs_global : lhs_global);
        auto* ag = b.AllGather(p0, dim, mesh.Groups(0));
        comp->set_root(side == 0 ? b.Einsum(ag, p1, spec_str)
                                 : b.Einsum(p1, ag, spec_str));
        params.push_back(ShardTensor(side == 0 ? lhs_data : rhs_data,
                                     sharding, mesh));
        params.push_back({side == 0 ? rhs_data : lhs_data});
    } else {
        // Partial einsum + ReduceScatter along the free label's out dim.
        auto* p0 = b.Parameter(0, lhs_global);
        auto* p1 = b.Parameter(1, rhs_global);
        auto* e = b.Einsum(p0, p1, spec_str);
        comp->set_root(b.ReduceScatter(e, spec->OutDimOf(label),
                                       mesh.Groups(0)));
        params.push_back({lhs_data});
        params.push_back({rhs_data});
    }
    ASSERT_TRUE(VerifyModule(module).ok());

    SpmdEvaluator eval(mesh);
    auto before = eval.Evaluate(*comp, params);
    ASSERT_TRUE(before.ok()) << before.status().ToString();

    CompilerOptions options;
    options.decompose.use_cost_model = false;
    options.decompose.unroll = rng.Next() % 2 == 0;
    options.decompose.bidirectional = rng.Next() % 2 == 0;
    options.fusion = rng.Next() % 2 == 0 ? FusionHeuristic::kDefault
                                         : FusionHeuristic::kOverlapAware;
    options.scheduler = rng.Next() % 2 == 0 ? SchedulerKind::kBottomUp
                                            : SchedulerKind::kTopDown;
    OverlapCompiler compiler(options);
    auto report = compiler.Compile(&module);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(VerifyModule(module).ok());

    auto after = eval.Evaluate(*comp, params);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    for (int64_t d = 0; d < n; ++d) {
        EXPECT_TRUE((*after)[static_cast<size_t>(d)].AllClose(
            (*before)[static_cast<size_t>(d)], 1e-3f))
            << spec_str << " n=" << n << " device " << d
            << (use_rs ? " (reduce-scatter)" : " (all-gather)");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Range(1, 61));

}  // namespace
}  // namespace overlap
