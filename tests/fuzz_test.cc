/**
 * @file
 * Randomized end-to-end property tests: random einsum specs, partition
 * counts, gathered sides and option combinations are pushed through the
 * full pipeline (decompose -> async -> fuse -> schedule) and the result
 * is interpreted on the multi-device evaluator against the untouched
 * program. Catches interactions the targeted suites do not enumerate.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "core/overlap_compiler.h"
#include "hlo/builder.h"
#include "hlo/verifier.h"
#include "interp/evaluator.h"
#include "test_util.h"

namespace overlap {
namespace {

using testing_util::ShardTensor;

/** Deterministic pseudo-random stream. */
class Rng {
  public:
    explicit Rng(uint64_t seed) : state_(seed * 2654435761u + 1) {}

    uint64_t Next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        return state_;
    }
    int64_t Pick(std::initializer_list<int64_t> values)
    {
        auto it = values.begin();
        std::advance(it, static_cast<int64_t>(Next() % values.size()));
        return *it;
    }

  private:
    uint64_t state_;
};

struct FuzzCase {
    std::string spec;
    std::vector<int64_t> lhs_dims;  // label sizes, filled below
    std::vector<int64_t> rhs_dims;
};

class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, RandomScenarioStaysEquivalent)
{
    Rng rng(static_cast<uint64_t>(GetParam()));
    const char* specs[] = {"bf,fh->bh", "bmf,bfh->bmh", "ab,bc->ac",
                           "xsd,dh->xsh"};
    std::string spec_str = specs[rng.Next() % 4];
    auto spec = EinsumSpec::Parse(spec_str);
    ASSERT_TRUE(spec.ok());

    int64_t n = rng.Pick({2, 3, 4, 6});
    Mesh mesh(n);
    int64_t shard = rng.Pick({1, 2, 3});
    bool use_rs = rng.Next() % 3 == 0;

    // Choose the partitioned label: for AllGather any label of the
    // gathered side, for ReduceScatter a free label.
    int64_t side = static_cast<int64_t>(rng.Next() % 2);
    const std::string& side_labels =
        side == 0 ? spec->lhs_labels() : spec->rhs_labels();
    char label = 0;
    for (size_t attempt = 0; attempt < side_labels.size() * 4; ++attempt) {
        char candidate = side_labels[rng.Next() % side_labels.size()];
        EinsumDimKind kind = spec->KindOf(candidate);
        if (use_rs && kind != EinsumDimKind::kLhsFree &&
            kind != EinsumDimKind::kRhsFree) {
            continue;
        }
        label = candidate;
        break;
    }
    if (label == 0) GTEST_SKIP() << "no usable label for this draw";
    if (use_rs) {
        side = spec->KindOf(label) == EinsumDimKind::kLhsFree ? 0 : 1;
    }

    // Global sizes per label.
    std::map<char, int64_t> sizes;
    for (char c : spec->all_labels()) {
        sizes[c] = rng.Pick({2, 3, 4});
    }
    sizes[label] = n * shard;

    auto dims_for = [&](const std::string& labels) {
        std::vector<int64_t> dims;
        for (char c : labels) dims.push_back(sizes.at(c));
        return dims;
    };
    Shape lhs_global(dims_for(spec->lhs_labels()));
    Shape rhs_global(dims_for(spec->rhs_labels()));

    HloModule module("fuzz");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    std::vector<std::vector<Tensor>> params;
    Tensor lhs_data = Tensor::Random(lhs_global, rng.Next());
    Tensor rhs_data = Tensor::Random(rhs_global, rng.Next());

    if (!use_rs) {
        // Shard the gathered operand along `label`, AllGather it back.
        const Shape& gathered = side == 0 ? lhs_global : rhs_global;
        int64_t dim = side == 0 ? spec->LhsDimOf(label)
                                : spec->RhsDimOf(label);
        TensorSharding sharding =
            TensorSharding::OnDim(gathered.rank(), dim, 0);
        auto* p0 = b.Parameter(0, sharding.ShardShape(gathered, mesh));
        auto* p1 =
            b.Parameter(1, side == 0 ? rhs_global : lhs_global);
        auto* ag = b.AllGather(p0, dim, mesh.Groups(0));
        comp->set_root(side == 0 ? b.Einsum(ag, p1, spec_str)
                                 : b.Einsum(p1, ag, spec_str));
        params.push_back(ShardTensor(side == 0 ? lhs_data : rhs_data,
                                     sharding, mesh));
        params.push_back({side == 0 ? rhs_data : lhs_data});
    } else {
        // Partial einsum + ReduceScatter along the free label's out dim.
        auto* p0 = b.Parameter(0, lhs_global);
        auto* p1 = b.Parameter(1, rhs_global);
        auto* e = b.Einsum(p0, p1, spec_str);
        comp->set_root(b.ReduceScatter(e, spec->OutDimOf(label),
                                       mesh.Groups(0)));
        params.push_back({lhs_data});
        params.push_back({rhs_data});
    }
    ASSERT_TRUE(VerifyModule(module).ok());

    SpmdEvaluator eval(mesh);
    auto before = eval.Evaluate(*comp, params);
    ASSERT_TRUE(before.ok()) << before.status().ToString();

    CompilerOptions options;
    options.decompose.use_cost_model = false;
    options.decompose.unroll = rng.Next() % 2 == 0;
    options.decompose.bidirectional = rng.Next() % 2 == 0;
    options.fusion = rng.Next() % 2 == 0 ? FusionHeuristic::kDefault
                                         : FusionHeuristic::kOverlapAware;
    options.scheduler = rng.Next() % 2 == 0 ? SchedulerKind::kBottomUp
                                            : SchedulerKind::kTopDown;
    OverlapCompiler compiler(options);
    auto report = compiler.Compile(&module);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(VerifyModule(module).ok());

    auto after = eval.Evaluate(*comp, params);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    for (int64_t d = 0; d < n; ++d) {
        EXPECT_TRUE((*after)[static_cast<size_t>(d)].AllClose(
            (*before)[static_cast<size_t>(d)], 1e-3f))
            << spec_str << " n=" << n << " device " << d
            << (use_rs ? " (reduce-scatter)" : " (all-gather)");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Range(1, 61));

// ---------------------------------------------------------------------------
// Verifier-targeted fuzzing: malformed modules must come back as error
// Status from VerifyModule, never crash (and never throw). These are the
// graphs a buggy pass could emit; the guarded pipeline relies on the
// verifier catching every one of them.
// ---------------------------------------------------------------------------

std::vector<std::pair<int64_t, int64_t>>
RingPairs(int64_t n)
{
    std::vector<std::pair<int64_t, int64_t>> pairs;
    for (int64_t d = 0; d < n; ++d) pairs.push_back({d, (d + 1) % n});
    return pairs;
}

/** A tiny valid module: parameter -> permute-start -> done (root). */
std::unique_ptr<HloModule>
BuildPermuteModule(HloInstruction** start_out = nullptr,
                   HloInstruction** done_out = nullptr)
{
    auto module = std::make_unique<HloModule>("verifier_fuzz");
    Mesh mesh(4);
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}));
    auto* start = b.CollectivePermuteStart(p, RingPairs(4));
    auto* done = b.CollectivePermuteDone(start);
    comp->set_root(done);
    if (start_out != nullptr) *start_out = start;
    if (done_out != nullptr) *done_out = done;
    return module;
}

TEST(VerifierFuzz, StartWithoutDoneIsRejected)
{
    auto module = std::make_unique<HloModule>("verifier_fuzz");
    module->set_mesh(Mesh(4));
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}));
    b.CollectivePermuteStart(p, RingPairs(4));
    comp->set_root(p);
    Status status = VerifyModule(*module);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("exactly one done"), std::string::npos)
        << status.ToString();
}

TEST(VerifierFuzz, TwoDonesPerStartAreRejected)
{
    HloInstruction* start = nullptr;
    auto module = BuildPermuteModule(&start);
    HloBuilder b(module->entry());
    b.CollectivePermuteDone(start);
    EXPECT_FALSE(VerifyModule(*module).ok());
}

TEST(VerifierFuzz, StartConsumedByNonDoneIsRejected)
{
    HloInstruction* start = nullptr;
    auto module = BuildPermuteModule(&start);
    HloBuilder b(module->entry());
    module->entry()->set_root(b.Negate(start));
    Status status = VerifyModule(*module);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("non-done"), std::string::npos)
        << status.ToString();
}

TEST(VerifierFuzz, DuplicatePermuteSourcesAreRejected)
{
    HloInstruction* start = nullptr;
    auto module = BuildPermuteModule(&start);
    start->mutable_attrs().source_target_pairs = {{0, 1}, {0, 2}};
    Status status = VerifyModule(*module);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("duplicate permute source"),
              std::string::npos)
        << status.ToString();
}

TEST(VerifierFuzz, DuplicatePermuteTargetsAreRejected)
{
    HloInstruction* start = nullptr;
    auto module = BuildPermuteModule(&start);
    start->mutable_attrs().source_target_pairs = {{0, 1}, {2, 1}};
    EXPECT_FALSE(VerifyModule(*module).ok());
}

TEST(VerifierFuzz, PermutePairOutOfMeshRangeIsRejected)
{
    HloInstruction* start = nullptr;
    auto module = BuildPermuteModule(&start);
    start->mutable_attrs().source_target_pairs = {{0, 99}};
    Status status = VerifyModule(*module);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("out of range"), std::string::npos)
        << status.ToString();
}

TEST(VerifierFuzz, DanglingOperandFromForeignComputationIsRejected)
{
    // An operand edge pointing at an instruction that lives in a different
    // computation: the classic dangling pointer a rollback-less pipeline
    // could leave behind.
    HloComputation foreign("foreign");
    HloBuilder fb(&foreign);
    auto* alien = fb.Parameter(0, Shape({8, 8}));

    auto module = std::make_unique<HloModule>("verifier_fuzz");
    module->set_mesh(Mesh(4));
    HloComputation* comp = module->AddEntryComputation("main");
    comp->set_root(comp->AddInstruction(HloOpcode::kNegate, Shape({8, 8}),
                                        {alien}));
    Status status = VerifyModule(*module);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("not defined before"), std::string::npos)
        << status.ToString();
}

TEST(VerifierFuzz, NonTopologicalScheduleIsRejected)
{
    auto module = BuildPermuteModule();
    HloComputation* comp = module->entry();
    std::vector<HloInstruction*> reversed = comp->instructions();
    std::reverse(reversed.begin(), reversed.end());
    comp->set_schedule(reversed);  // passes the size CHECK...
    Status status = VerifyModule(*module);  // ...but not the verifier
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("before its operand"), std::string::npos)
        << status.ToString();
}

TEST(VerifierFuzz, ScheduleRepeatingAnInstructionIsRejected)
{
    HloInstruction* start = nullptr;
    HloInstruction* done = nullptr;
    auto module = BuildPermuteModule(&start, &done);
    HloComputation* comp = module->entry();
    std::vector<HloInstruction*> instrs = comp->instructions();
    ASSERT_EQ(instrs.size(), 3u);
    comp->set_schedule({instrs[0], start, start});
    EXPECT_FALSE(VerifyModule(*module).ok());
}

TEST(VerifierFuzz, DeclaredShapeMismatchIsRejected)
{
    auto module = std::make_unique<HloModule>("verifier_fuzz");
    module->set_mesh(Mesh(4));
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}));
    // Negate must preserve shape; declare something else.
    comp->set_root(
        comp->AddInstruction(HloOpcode::kNegate, Shape({3, 3}), {p}));
    Status status = VerifyModule(*module);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("shape mismatch"), std::string::npos)
        << status.ToString();
}

/** Valid async AllToAll pair (§18 micro-batch pipelining) on a 4-ring. */
std::unique_ptr<HloModule>
BuildAllToAllPairModule(HloInstruction** start_out = nullptr,
                        HloInstruction** done_out = nullptr)
{
    auto module = std::make_unique<HloModule>("verifier_fuzz");
    Mesh mesh(4);
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}));
    auto* start = b.AllToAllStart(p, 0, mesh.Groups(0));
    start->mutable_attrs().channel_id = comp->NextChannelId();
    auto* done = b.AllToAllDone(start);
    comp->set_root(done);
    if (start_out != nullptr) *start_out = start;
    if (done_out != nullptr) *done_out = done;
    return module;
}

TEST(VerifierFuzz, AllToAllStartWithoutDoneIsRejected)
{
    auto module = std::make_unique<HloModule>("verifier_fuzz");
    module->set_mesh(Mesh(4));
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}));
    b.AllToAllStart(p, 0, Mesh(4).Groups(0));
    comp->set_root(p);
    Status status = VerifyModule(*module);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("exactly one done"), std::string::npos)
        << status.ToString();
}

TEST(VerifierFuzz, AllToAllStartConsumedByNonDoneIsRejected)
{
    HloInstruction* start = nullptr;
    auto module = BuildAllToAllPairModule(&start);
    HloBuilder b(module->entry());
    module->entry()->set_root(b.Negate(start));
    Status status = VerifyModule(*module);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("non-done"), std::string::npos)
        << status.ToString();
}

TEST(VerifierFuzz, AllToAllDonePairedWithPermuteStartIsRejected)
{
    // A done must retire an exchange of its own kind: pairing an
    // all-to-all-done with a collective-permute-start is the classic
    // cross-wired Start/Done bug an async-splitting pass could emit.
    // The start's side of the check fires: its user is not a
    // collective-permute-done.
    HloInstruction* start = nullptr;
    auto module = BuildPermuteModule(&start);
    HloComputation* comp = module->entry();
    comp->set_root(comp->AddInstruction(HloOpcode::kAllToAllDone,
                                        start->shape(), {start}));
    Status status = VerifyModule(*module);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("non-done"), std::string::npos)
        << status.ToString();
}

TEST(VerifierFuzz, AllToAllDoneWithoutAStartIsRejected)
{
    // The done side of the same cross-wiring: an all-to-all-done whose
    // operand is ordinary data.
    auto module = std::make_unique<HloModule>("verifier_fuzz");
    module->set_mesh(Mesh(4));
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}));
    auto* neg = b.Negate(p);
    comp->set_root(comp->AddInstruction(HloOpcode::kAllToAllDone,
                                        neg->shape(), {neg}));
    Status status = VerifyModule(*module);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("all-to-all-start"), std::string::npos)
        << status.ToString();
}

TEST(VerifierFuzz, AllToAllDoneChannelMismatchIsRejected)
{
    HloInstruction* start = nullptr;
    HloInstruction* done = nullptr;
    auto module = BuildAllToAllPairModule(&start, &done);
    done->mutable_attrs().channel_id = start->attrs().channel_id + 1;
    Status status = VerifyModule(*module);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("channel"), std::string::npos)
        << status.ToString();
    done->mutable_attrs().channel_id = start->attrs().channel_id;
    EXPECT_TRUE(VerifyModule(*module).ok());
}

TEST(VerifierFuzz, NonDivisibleAllToAllDimIsRejected)
{
    // 6 rows across a 4-group exchange: no equal per-peer chunk exists.
    // The builder's shape inference refuses to construct this, so feed
    // the verifier the raw instruction.
    auto module = std::make_unique<HloModule>("verifier_fuzz");
    Mesh mesh(4);
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({6, 8}));
    InstrAttrs attrs;
    attrs.dim = 0;
    attrs.groups = mesh.Groups(0);
    comp->set_root(comp->AddInstruction(HloOpcode::kAllToAll, Shape({6, 8}),
                                        {p}, std::move(attrs)));
    Status status = VerifyModule(*module);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("not divisible"), std::string::npos)
        << status.ToString();
}

TEST(VerifierFuzz, NonDivisibleAllToAllStartDimIsRejected)
{
    auto module = std::make_unique<HloModule>("verifier_fuzz");
    Mesh mesh(4);
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({6, 8}));
    InstrAttrs attrs;
    attrs.dim = 0;
    attrs.groups = mesh.Groups(0);
    auto* start = comp->AddInstruction(HloOpcode::kAllToAllStart,
                                       Shape({6, 8}), {p},
                                       std::move(attrs));
    InstrAttrs done_attrs;
    comp->set_root(comp->AddInstruction(HloOpcode::kAllToAllDone,
                                        Shape({6, 8}), {start},
                                        std::move(done_attrs)));
    Status status = VerifyModule(*module);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("not divisible"), std::string::npos)
        << status.ToString();
}

TEST(VerifierFuzz, ChunkAttributeOnNonPermuteIsRejected)
{
    auto module = std::make_unique<HloModule>("verifier_fuzz");
    Mesh mesh(4);
    module->set_mesh(mesh);
    HloComputation* comp = module->AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8, 8}));
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    ag->mutable_attrs().a2a_chunk = 1;
    comp->set_root(ag);
    Status status = VerifyModule(*module);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("non-permute"), std::string::npos)
        << status.ToString();
}

/**
 * Seeded corruption loop: start from a valid module, apply one random
 * corruption, and require an error Status (no crash, no throw, no false
 * acceptance).
 */
class VerifierCorruptionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(VerifierCorruptionFuzz, CorruptedModuleNeverCrashesVerifier)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 7919u + 3u);
    HloInstruction* start = nullptr;
    HloInstruction* done = nullptr;
    auto module = BuildPermuteModule(&start, &done);
    HloComputation* comp = module->entry();
    ASSERT_TRUE(VerifyModule(*module).ok());

    switch (rng.Next() % 5) {
      case 0:
          start->mutable_attrs().source_target_pairs = {
              {0, 1}, {0, static_cast<int64_t>(rng.Next() % 4)}};
          break;
      case 1:
          start->mutable_attrs().source_target_pairs = {
              {static_cast<int64_t>(rng.Next() % 1000) + 4, 0}};
          break;
      case 2: {
          std::vector<HloInstruction*> sched = comp->instructions();
          std::reverse(sched.begin(), sched.end());
          comp->set_schedule(sched);
          break;
      }
      case 3: {
          HloBuilder b(comp);
          comp->set_root(b.Negate(start));
          break;
      }
      default:
          done->mutable_attrs().source_target_pairs = {{0, 1}, {1, 0}};
          comp->set_root(comp->AddInstruction(
              HloOpcode::kNegate, Shape({2, 2}), {done}));
          break;
    }
    Status status;
    EXPECT_NO_THROW(status = VerifyModule(*module));
    EXPECT_FALSE(status.ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierCorruptionFuzz,
                         ::testing::Range(1, 33));

}  // namespace
}  // namespace overlap
