#include <gtest/gtest.h>

#include "hlo/builder.h"
#include "hlo/module.h"
#include "hlo/verifier.h"

namespace overlap {
namespace {

TEST(BuilderTest, EinsumShapeInference)
{
    HloModule module("m");
    HloBuilder b(module.AddEntryComputation("main"));
    auto* lhs = b.Parameter(0, Shape({4, 8}));
    auto* rhs = b.Parameter(1, Shape({8, 16}));
    auto* out = b.Einsum(lhs, rhs, "mk,kn->mn");
    EXPECT_EQ(out->shape().dims(), (std::vector<int64_t>{4, 16}));
    module.entry()->set_root(out);
    EXPECT_TRUE(VerifyModule(module).ok());
}

TEST(BuilderTest, CollectiveShapes)
{
    HloModule module("m");
    module.set_mesh(Mesh(4));
    HloBuilder b(module.AddEntryComputation("main"));
    auto* p = b.Parameter(0, Shape({2, 8}));
    Mesh mesh(4);
    auto* ag = b.AllGather(p, 0, mesh.Groups(0));
    EXPECT_EQ(ag->shape().dims(), (std::vector<int64_t>{8, 8}));
    auto* rs = b.ReduceScatter(ag, 1, mesh.Groups(0));
    EXPECT_EQ(rs->shape().dims(), (std::vector<int64_t>{8, 2}));
    auto* ar = b.AllReduce(rs, mesh.Groups(0));
    EXPECT_EQ(ar->shape().dims(), rs->shape().dims());
    module.entry()->set_root(ar);
    EXPECT_TRUE(VerifyModule(module).ok());
}

TEST(BuilderTest, DynamicSliceHelpers)
{
    HloModule module("m");
    HloBuilder b(module.AddEntryComputation("main"));
    auto* p = b.Parameter(0, Shape({4, 8}));
    auto* idx = b.ConstantIndex(2);
    auto* slice = b.DynamicSliceOnDim(p, 1, idx, 4);
    EXPECT_EQ(slice->shape().dims(), (std::vector<int64_t>{4, 4}));
    auto* updated = b.DynamicUpdateSliceOnDim(p, slice, 1, idx);
    EXPECT_EQ(updated->shape().dims(), p->shape().dims());
    module.entry()->set_root(updated);
    EXPECT_TRUE(VerifyModule(module).ok());
}

TEST(ComputationTest, UsersTracked)
{
    HloModule module("m");
    HloBuilder b(module.AddEntryComputation("main"));
    auto* p = b.Parameter(0, Shape({2}));
    auto* neg = b.Negate(p);
    auto* add = b.Add(neg, neg);
    EXPECT_EQ(p->users().size(), 1u);
    EXPECT_EQ(neg->users().size(), 1u);  // duplicate operand counted once
    EXPECT_TRUE(neg->HasUser(add));
}

TEST(ComputationTest, ReplaceAllUsesWith)
{
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2}));
    auto* old_value = b.Negate(p);
    auto* user = b.Add(old_value, old_value);
    comp->set_root(user);
    auto* replacement = b.Copy(p);
    comp->ReplaceAllUsesWith(old_value, replacement);
    EXPECT_EQ(user->operand(0), replacement);
    EXPECT_EQ(user->operand(1), replacement);
    EXPECT_TRUE(old_value->users().empty());
    comp->SortTopologically();
    EXPECT_TRUE(VerifyComputation(*comp).ok());
}

TEST(ComputationTest, DeadCodeElimination)
{
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2}));
    auto* live = b.Negate(p);
    auto* dead = b.Add(p, p);
    b.Add(dead, dead);  // dead chain
    comp->set_root(live);
    EXPECT_EQ(comp->RemoveDeadInstructions(), 2);
    EXPECT_EQ(comp->instruction_count(), 2);
    EXPECT_TRUE(p->users().size() == 1);
}

TEST(ComputationTest, TopologicalSortIsStable)
{
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2}));
    auto* a = b.Negate(p);
    auto* c = b.Add(a, p);
    comp->set_root(c);
    // Replace a's use with a later-defined value -> order broken.
    auto* late = b.Copy(p);
    comp->ReplaceAllUsesWith(a, late);
    comp->RemoveDeadInstructions();
    comp->SortTopologically();
    EXPECT_TRUE(VerifyComputation(*comp).ok());
    // Stability: p stays first.
    EXPECT_EQ(comp->instructions().front(), p);
}

TEST(VerifierTest, CatchesBadSchedule)
{
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2}));
    auto* n = b.Negate(p);
    comp->set_root(n);
    comp->set_schedule({n, p});
    EXPECT_FALSE(VerifyComputation(*comp).ok());
    comp->set_schedule({p, n});
    EXPECT_TRUE(VerifyComputation(*comp).ok());
}

TEST(VerifierTest, CatchesRaggedCollectiveGroups)
{
    HloModule module("m");
    module.set_mesh(Mesh(4));
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2}));
    InstrAttrs attrs;
    attrs.dim = 0;
    attrs.groups = {{0, 1, 2}, {3}};
    comp->AddInstruction(HloOpcode::kAllReduce, p->shape(), {p},
                         std::move(attrs));
    EXPECT_FALSE(VerifyModule(module).ok());
}

TEST(VerifierTest, CatchesDuplicatePermuteSource)
{
    HloModule module("m");
    module.set_mesh(Mesh(4));
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2}));
    InstrAttrs attrs;
    attrs.source_target_pairs = {{0, 1}, {0, 2}};
    comp->AddInstruction(HloOpcode::kCollectivePermute, p->shape(), {p},
                         std::move(attrs));
    EXPECT_FALSE(VerifyModule(module).ok());
}

TEST(VerifierTest, StartNeedsExactlyOneDone)
{
    HloModule module("m");
    module.set_mesh(Mesh(2));
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2}));
    auto* start = b.CollectivePermuteStart(p, {{0, 1}, {1, 0}});
    comp->set_root(start);
    EXPECT_FALSE(VerifyModule(module).ok());
    auto* done = b.CollectivePermuteDone(start);
    comp->set_root(done);
    EXPECT_TRUE(VerifyModule(module).ok());
}

TEST(VerifierTest, ShapeMismatchDetected)
{
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2, 3}));
    // Deliberately wrong declared shape.
    comp->AddInstruction(HloOpcode::kNegate, Shape({3, 2}), {p}, {});
    EXPECT_FALSE(VerifyComputation(*comp).ok());
}

TEST(PrinterTest, DumpsReadableText)
{
    HloModule module("m");
    HloBuilder b(module.AddEntryComputation("main"));
    auto* lhs = b.Parameter(0, Shape({4, 8}), "activations");
    auto* rhs = b.Parameter(1, Shape({8, 16}));
    auto* out = b.Einsum(lhs, rhs, "mk,kn->mn");
    module.entry()->set_root(out);
    std::string text = module.ToString();
    EXPECT_NE(text.find("activations"), std::string::npos);
    EXPECT_NE(text.find("spec=mk,kn->mn"), std::string::npos);
    EXPECT_NE(text.find("ROOT"), std::string::npos);
}

}  // namespace
}  // namespace overlap
