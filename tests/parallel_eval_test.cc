/**
 * @file
 * Parallel-vs-serial equivalence for the execution stack (run under
 * TSan by scripts/check_sanitize.sh): the concurrent-device evaluator
 * must be bitwise identical to the serial lock-step walk, a pooled
 * difftest sweep must produce a byte-identical summary, and error
 * paths must report the same Status without deadlocking.
 */
#include <gtest/gtest.h>

#include "difftest/difftest.h"
#include "hlo/builder.h"
#include "hlo/module.h"
#include "interp/evaluator.h"
#include "support/metrics.h"
#include "support/thread_pool.h"
#include "support/tracing.h"
#include "tensor/tensor.h"

namespace overlap {
namespace {

using difftest::AllDecomposeVariants;
using difftest::DiffTestConfig;
using difftest::GenerateSiteSpec;
using difftest::RunDiffTest;
using difftest::RunSingleCase;
using difftest::SiteSpec;

bool
BitIdentical(const std::vector<Tensor>& a, const std::vector<Tensor>& b)
{
    if (a.size() != b.size()) return false;
    for (size_t d = 0; d < a.size(); ++d) {
        if (!(a[d].shape() == b[d].shape())) return false;
        if (Tensor::MaxAbsDiff(a[d], b[d]) != 0.0f) return false;
    }
    return true;
}

TEST(ParallelEvalTest, ConcurrentDevicesBitIdenticalAcrossVariants)
{
    // Every difftest variant compares its decomposed program against the
    // blocking reference; running the whole case with concurrent devices
    // must change nothing about the comparison, and the raw evaluator
    // outputs must match the serial walk bit for bit.
    EvalOptions concurrent;
    concurrent.concurrent_devices = true;
    for (int64_t i = 0; i < 8; ++i) {
        SiteSpec spec = GenerateSiteSpec(/*seed=*/3, i);
        for (const auto& variant : AllDecomposeVariants()) {
            auto serial = RunSingleCase(spec, variant, false);
            auto parallel = RunSingleCase(spec, variant, false, concurrent);
            ASSERT_TRUE(serial.ok()) << serial.status().ToString();
            ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
            EXPECT_TRUE(serial->equal) << spec.ToString();
            EXPECT_TRUE(parallel->equal) << spec.ToString();
            EXPECT_EQ(serial->max_abs_diff, parallel->max_abs_diff)
                << "[" << variant.name << "] " << spec.ToString();
        }
    }
}

TEST(ParallelEvalTest, ConcurrentEvaluatorMatchesSerialBitwise)
{
    Mesh mesh(4);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({4, 8}));
    auto* ag = b.AllGather(p, /*dim=*/0, mesh.Groups(0));
    auto* w = b.Parameter(1, Shape({8, 8}));
    comp->set_root(b.Einsum(ag, w, "bf,fh->bh"));

    std::vector<std::vector<Tensor>> params(2);
    for (int64_t d = 0; d < 4; ++d) {
        params[0].push_back(Tensor::Random(
            Shape({4, 8}), static_cast<uint64_t>(d) + 1));
    }
    params[1] = {Tensor::Random(Shape({8, 8}), 99)};

    SpmdEvaluator serial(mesh);
    EvalOptions opts;
    opts.concurrent_devices = true;
    SpmdEvaluator concurrent(mesh, opts);
    auto a = serial.Evaluate(*comp, params);
    auto c = concurrent.Evaluate(*comp, params);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(c.ok());
    EXPECT_TRUE(BitIdentical(*a, *c));
}

TEST(ParallelEvalTest, ObservabilityDoesNotPerturbConcurrentResults)
{
    // Observer-effect check for the DESIGN.md §13 instruments: with
    // metrics + tracing enabled the concurrent evaluator must stay bit
    // identical to the untraced serial walk, while the channel
    // counters and wait histograms actually fill in. This is the
    // measurement half of diagnosing concurrent speedups < 1 on
    // single-core hosts — the numbers must be trustworthy before the
    // perf baseline reads them.
    Mesh mesh(4);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({4, 8}));
    auto* ag = b.AllGather(p, /*dim=*/0, mesh.Groups(0));
    auto* w = b.Parameter(1, Shape({8, 8}));
    comp->set_root(b.Einsum(ag, w, "bf,fh->bh"));

    std::vector<std::vector<Tensor>> params(2);
    for (int64_t d = 0; d < 4; ++d) {
        params[0].push_back(Tensor::Random(
            Shape({4, 8}), static_cast<uint64_t>(d) + 1));
    }
    params[1] = {Tensor::Random(Shape({8, 8}), 99)};

    SpmdEvaluator serial(mesh);
    auto want = serial.Evaluate(*comp, params);
    ASSERT_TRUE(want.ok());

    SetMetricsEnabled(true);
    SetTracingEnabled(true);
    MetricsRegistry::Global().ResetAll();
    TraceRecorder::Global().Clear();
    EvalOptions opts;
    opts.concurrent_devices = true;
    SpmdEvaluator concurrent(mesh, opts);
    auto got = concurrent.Evaluate(*comp, params);
    SetMetricsEnabled(false);
    SetTracingEnabled(false);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(BitIdentical(*want, *got));

    // One channel record per device at the single AllGather, split
    // between exactly the leader and wait histograms.
    Counter* total = MetricsRegistry::Global().counter(
        "evaluator.channel_total");
    Histogram::Snapshot waits =
        MetricsRegistry::Global()
            .histogram("evaluator.channel_wait_seconds")
            ->snapshot();
    Histogram::Snapshot leads =
        MetricsRegistry::Global()
            .histogram("evaluator.channel_leader_seconds")
            ->snapshot();
    EXPECT_EQ(total->value(), 4);
    EXPECT_EQ(waits.count + leads.count, total->value());
    EXPECT_GE(leads.count, 1);
    EXPECT_GE(waits.min, 0.0);
    std::vector<TraceSpan> spans = TraceRecorder::Global().Drain();
    EXPECT_FALSE(spans.empty());

    // Disabled again, another run moves neither instrument.
    MetricsRegistry::Global().ResetAll();
    auto silent = concurrent.Evaluate(*comp, params);
    ASSERT_TRUE(silent.ok());
    EXPECT_TRUE(BitIdentical(*want, *silent));
    EXPECT_EQ(total->value(), 0);
    EXPECT_TRUE(TraceRecorder::Global().Drain().empty());
}

TEST(ParallelEvalTest, ConcurrentErrorMatchesSerialWithoutDeadlock)
{
    // The invalid permute is rejected before any channel is entered;
    // every device must be released (not left waiting for a peer that
    // errored) and the reported Status must be the serial one.
    Mesh mesh(3);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({1}));
    comp->set_root(b.CollectivePermute(p, {{0, 2}, {1, 2}}));
    std::vector<Tensor> inputs(3, Tensor(Shape({1}), {1}));

    SpmdEvaluator serial(mesh);
    auto serial_result = serial.Evaluate(*comp, {inputs});
    ASSERT_FALSE(serial_result.ok());

    EvalOptions opts;
    opts.concurrent_devices = true;
    SpmdEvaluator concurrent(mesh, opts);
    auto parallel_result = concurrent.Evaluate(*comp, {inputs});
    ASSERT_FALSE(parallel_result.ok());
    EXPECT_EQ(parallel_result.status().code(),
              serial_result.status().code());
    EXPECT_EQ(parallel_result.status().message(),
              serial_result.status().message());
}

TEST(ParallelEvalTest, ChannelWaitersReleasedWhenPeerFailsBeforePush)
{
    // Device 2's parameter has the wrong shape, so it dies before ever
    // pushing into the AllReduce channel. Devices 0 and 1 are parked in
    // that channel (0 as group leader waiting for member inputs) and
    // must be woken by cancellation, and the merged error must be the
    // failing device's own Status — identical to the serial walk's.
    Mesh mesh(3);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({4}));
    comp->set_root(b.AllReduce(p, mesh.Groups(0)));
    std::vector<std::vector<Tensor>> params(1);
    params[0] = {Tensor(Shape({4}), {1, 2, 3, 4}),
                 Tensor(Shape({4}), {5, 6, 7, 8}),
                 Tensor(Shape({5}), {9, 10, 11, 12, 13})};

    SpmdEvaluator serial(mesh);
    auto serial_result = serial.Evaluate(*comp, params);
    ASSERT_FALSE(serial_result.ok());

    EvalOptions opts;
    opts.concurrent_devices = true;
    SpmdEvaluator concurrent(mesh, opts);
    auto parallel_result = concurrent.Evaluate(*comp, params);
    ASSERT_FALSE(parallel_result.ok());
    EXPECT_EQ(parallel_result.status().code(),
              serial_result.status().code());
    EXPECT_EQ(parallel_result.status().message(),
              serial_result.status().message());
}

TEST(ParallelEvalTest, PermuteReceiverReleasedWhenSenderFails)
{
    // A permute receiver waits only on its own pair's SPSC slot; if the
    // sender fails before pushing, cancellation must release the
    // receiver with the sender's error, never a deadlock or a zeroed
    // "nothing received" result.
    Mesh mesh(2);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({3}));
    comp->set_root(b.CollectivePermute(p, {{1, 0}}));
    std::vector<std::vector<Tensor>> params(1);
    params[0] = {Tensor(Shape({3}), {1, 2, 3}),
                 Tensor(Shape({2}), {4, 5})};  // device 1: bad shape

    SpmdEvaluator serial(mesh);
    auto serial_result = serial.Evaluate(*comp, params);
    ASSERT_FALSE(serial_result.ok());

    EvalOptions opts;
    opts.concurrent_devices = true;
    SpmdEvaluator concurrent(mesh, opts);
    auto parallel_result = concurrent.Evaluate(*comp, params);
    ASSERT_FALSE(parallel_result.ok());
    EXPECT_EQ(parallel_result.status().code(),
              serial_result.status().code());
    EXPECT_EQ(parallel_result.status().message(),
              serial_result.status().message());
}

TEST(ParallelEvalTest, ChannelLeaderErrorReachesAllGroupMembers)
{
    // Under SDC instrumentation the exchange leader runs the transfer
    // checksum verification; a detection must propagate through the
    // result slots to every member so the evaluation fails with the
    // serial walk's exact FailedPrecondition, not a hang or a partial
    // result.
    Mesh mesh(4);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({8}));
    comp->set_root(b.AllReduce(p, mesh.Groups(0)));
    std::vector<std::vector<Tensor>> params(1);
    for (int64_t d = 0; d < 4; ++d) {
        params[0].push_back(Tensor::Random(
            Shape({8}), static_cast<uint64_t>(d) + 11));
    }

    SdcEvalConfig sdc;
    sdc.step = 0;
    SilentCorruption corruption;
    corruption.step = 0;
    corruption.chip = 2;
    corruption.instruction = 0;
    corruption.target = CorruptionTarget::kTransferPayload;
    sdc.corruptions = {corruption};
    sdc.detectors.enabled = true;
    sdc.detectors.verify_transfers = true;
    sdc.detectors.verify_einsums = false;

    EvalOptions serial_opts;
    serial_opts.sdc = &sdc;
    SpmdEvaluator serial(mesh, serial_opts);
    auto serial_result = serial.Evaluate(*comp, params);
    ASSERT_FALSE(serial_result.ok());
    EXPECT_EQ(serial_result.status().code(),
              StatusCode::kFailedPrecondition);

    EvalOptions opts;
    opts.concurrent_devices = true;
    opts.sdc = &sdc;
    SpmdEvaluator concurrent(mesh, opts);
    auto parallel_result = concurrent.Evaluate(*comp, params);
    ASSERT_FALSE(parallel_result.ok());
    EXPECT_EQ(parallel_result.status().code(),
              serial_result.status().code());
    EXPECT_EQ(parallel_result.status().message(),
              serial_result.status().message());
}

TEST(ParallelEvalTest, EvaluateBatchOnPoolMatchesSerial)
{
    Mesh mesh(2);
    HloModule module("m");
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape({2, 2}));
    comp->set_root(b.AllGather(p, 0, mesh.Groups(0)));

    std::vector<std::vector<Tensor>> params(1);
    params[0] = {Tensor::Random(Shape({2, 2}), 1),
                 Tensor::Random(Shape({2, 2}), 2)};
    std::vector<const HloComputation*> comps(6, comp);

    SpmdEvaluator serial(mesh);
    auto want = serial.EvaluateBatch(comps, params);
    ASSERT_TRUE(want.ok());

    ThreadPool pool(4);
    EvalOptions opts;
    opts.batch_pool = &pool;
    SpmdEvaluator pooled(mesh, opts);
    auto got = pooled.EvaluateBatch(comps, params);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(want->size(), got->size());
    for (size_t i = 0; i < want->size(); ++i) {
        EXPECT_TRUE(BitIdentical((*want)[i], (*got)[i])) << "batch " << i;
    }
}

TEST(ParallelEvalTest, DiffTestSliceByteIdenticalAcrossThreadCounts)
{
    DiffTestConfig config;
    config.num_cases = 64;
    config.seed = 1;
    config.threads = 1;
    auto serial = RunDiffTest(config);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();

    for (int64_t threads : {2, 4}) {
        config.threads = threads;
        auto parallel = RunDiffTest(config);
        ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
        EXPECT_EQ(serial->ToString(), parallel->ToString());
        EXPECT_EQ(serial->cases_run, parallel->cases_run);
        EXPECT_EQ(serial->variants_run, parallel->variants_run);
        EXPECT_EQ(serial->mismatches, parallel->mismatches);
        EXPECT_EQ(serial->failures.size(), parallel->failures.size());
        EXPECT_EQ(serial->cases_by_site, parallel->cases_by_site);
        EXPECT_EQ(serial->odd_extent_cases, parallel->odd_extent_cases);
        EXPECT_EQ(serial->even_extent_cases, parallel->even_extent_cases);
    }
}

TEST(ParallelEvalTest, DiffTestFailureListIdenticalUnderInjectedBug)
{
    // With the deliberate shard-id bug the sweep produces mismatches;
    // the failure list (order, contents, cap cut-off) must not depend
    // on the thread count.
    DiffTestConfig config;
    config.num_cases = 24;
    config.seed = 5;
    config.inject_shard_id_bug = true;
    config.max_failures = 8;
    config.threads = 1;
    auto serial = RunDiffTest(config);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    EXPECT_GT(serial->mismatches, 0);

    config.threads = 4;
    auto parallel = RunDiffTest(config);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(serial->ToString(), parallel->ToString());
    ASSERT_EQ(serial->failures.size(), parallel->failures.size());
    for (size_t i = 0; i < serial->failures.size(); ++i) {
        EXPECT_EQ(serial->failures[i].spec.ToString(),
                  parallel->failures[i].spec.ToString());
        EXPECT_EQ(serial->failures[i].variant,
                  parallel->failures[i].variant);
    }
}

TEST(ParallelEvalTest, ConcurrentDevicesInsidePooledSweep)
{
    // Compose both levels: cases on the pool, devices on their own
    // threads. Still byte-identical to the fully serial sweep.
    DiffTestConfig config;
    config.num_cases = 12;
    config.seed = 7;
    config.threads = 1;
    auto serial = RunDiffTest(config);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();

    config.threads = 3;
    config.concurrent_devices = true;
    auto parallel = RunDiffTest(config);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(serial->ToString(), parallel->ToString());
}

}  // namespace
}  // namespace overlap
