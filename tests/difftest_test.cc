#include <gtest/gtest.h>

#include "difftest/difftest.h"
#include "difftest/minimizer.h"
#include "hlo/parser.h"
#include "passes/decompose.h"

namespace overlap {
namespace difftest {
namespace {

// ---------------------------------------------------------------------------
// Tier-1 sweep: 70 seeded cases x all six decomposition variants. The
// stratified generator guarantees every 10 consecutive indices cover all
// five site cases under both shard-extent parities.
// ---------------------------------------------------------------------------

TEST(DiffTest, Tier1SweepHasZeroMismatches)
{
    DiffTestConfig config;
    config.num_cases = 70;
    config.seed = 42;
    auto summary = RunDiffTest(config);
    ASSERT_TRUE(summary.ok()) << summary.status().message();
    EXPECT_EQ(summary->cases_run, 70);
    EXPECT_EQ(summary->variants_run,
              70 * static_cast<int64_t>(AllDecomposeVariants().size()));
    EXPECT_EQ(summary->mismatches, 0) << summary->ToString();
    // Coverage: all five site cases, both parities.
    for (size_t c = 0; c < static_cast<size_t>(kNumSiteCases); ++c) {
        EXPECT_EQ(summary->cases_by_site[c], 14)
            << "site case " << c << " under-covered";
    }
    EXPECT_EQ(summary->odd_extent_cases, 35);
    EXPECT_EQ(summary->even_extent_cases, 35);
}

// ---------------------------------------------------------------------------
// §18 equivalence wall: a pinned-case sweep mass-produces AllToAll
// sites (GenerateSiteSpecForCase keeps the stratified stream, only the
// case is fixed) and demands blocking/decomposed agreement under every
// variant. check_sanitize.sh runs this at >= 512 sites; the unit test
// keeps a fast representative slice.
// ---------------------------------------------------------------------------

TEST(DiffTest, AllToAllOnlySweepHasZeroMismatches)
{
    DiffTestConfig config;
    config.num_cases = 32;
    config.seed = 42;
    config.only_case = SiteCase::kAllToAll;
    auto summary = RunDiffTest(config);
    ASSERT_TRUE(summary.ok()) << summary.status().message();
    EXPECT_EQ(summary->cases_run, 32);
    EXPECT_EQ(summary->mismatches, 0) << summary->ToString();
    EXPECT_EQ(summary->cases_by_site[4], 32);
    EXPECT_GT(summary->odd_extent_cases, 0);
    EXPECT_GT(summary->even_extent_cases, 0);
}

TEST(DiffTest, AllToAllSpecLineRoundTrips)
{
    for (int64_t i = 0; i < 16; ++i) {
        SiteSpec spec = GenerateSiteSpecForCase(99, i, SiteCase::kAllToAll);
        EXPECT_EQ(spec.site_case, SiteCase::kAllToAll);
        auto parsed = SiteSpec::Parse(spec.ToString());
        ASSERT_TRUE(parsed.ok()) << parsed.status().message();
        EXPECT_EQ(parsed->ToString(), spec.ToString());
    }
}

TEST(DiffTest, SweepIsDeterministicPerSeed)
{
    SiteSpec a = GenerateSiteSpec(7, 13);
    SiteSpec b = GenerateSiteSpec(7, 13);
    EXPECT_EQ(a.ToString(), b.ToString());
    SiteSpec c = GenerateSiteSpec(8, 13);
    EXPECT_NE(a.ToString(), c.ToString());
}

TEST(DiffTest, SpecLineRoundTrips)
{
    for (int64_t i = 0; i < 32; ++i) {
        SiteSpec spec = GenerateSiteSpec(99, i);
        auto parsed = SiteSpec::Parse(spec.ToString());
        ASSERT_TRUE(parsed.ok()) << parsed.status().message();
        EXPECT_EQ(parsed->ToString(), spec.ToString());
    }
}

TEST(DiffTest, SpecParseRejectsGarbage)
{
    EXPECT_FALSE(SiteSpec::Parse("mesh=4 axis=0").ok());  // no case
    EXPECT_FALSE(SiteSpec::Parse("case=nope mesh=4").ok());
    EXPECT_FALSE(SiteSpec::Parse("case=rs mesh=2x2x2").ok());
    EXPECT_FALSE(SiteSpec::Parse("case=rs mesh=4 axis=1").ok());
    EXPECT_FALSE(SiteSpec::Parse("case=rs bogus").ok());
}

TEST(DiffTest, ReproLineRoundTrips)
{
    SiteSpec spec = GenerateSiteSpec(3, 5);
    std::string line =
        spec.ToString() + " variant=bidi_unroll inject=1";
    auto repro = ParseReproLine(line);
    ASSERT_TRUE(repro.ok()) << repro.status().message();
    EXPECT_EQ(repro->spec.ToString(), spec.ToString());
    EXPECT_STREQ(repro->variant.name, "bidi_unroll");
    EXPECT_TRUE(repro->inject_shard_id_bug);
    EXPECT_FALSE(ParseReproLine(spec.ToString()).ok());  // no variant
}

// ---------------------------------------------------------------------------
// The minimizer, pointed at a deliberately injected decompose bug
// (DecomposeOptions::test_shard_id_bug), must catch the mismatch and
// shrink it to a <= 8-instruction module the parser round-trips.
// ---------------------------------------------------------------------------

TEST(DiffTest, InjectedBugIsCaughtAndMinimized)
{
    DiffTestConfig config;
    config.num_cases = 8;
    config.seed = 42;
    config.inject_shard_id_bug = true;
    auto summary = RunDiffTest(config);
    ASSERT_TRUE(summary.ok()) << summary.status().message();
    ASSERT_GT(summary->mismatches, 0)
        << "injected shard-id bug was not detected";
    ASSERT_FALSE(summary->failures.empty());

    const CaseFailure& failure = summary->failures.front();
    auto variant = FindVariant(failure.variant);
    ASSERT_TRUE(variant.ok());
    auto minimized = MinimizeFailure(failure.spec, variant.value(),
                                     /*inject_shard_id_bug=*/true);
    ASSERT_TRUE(minimized.ok()) << minimized.status().message();

    // The shrunken module is tiny and still fails.
    EXPECT_LE(minimized->module_instructions, 8)
        << minimized->module_text;
    auto check = RunSingleCase(minimized->spec, minimized->variant,
                               /*inject_shard_id_bug=*/true);
    ASSERT_TRUE(check.ok());
    EXPECT_FALSE(check->equal);

    // ...and parses back to the identical text.
    auto reparsed = ParseHloModule(minimized->module_text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
    EXPECT_EQ((*reparsed)->ToString(), minimized->module_text);

    // The one-line repro re-runs through the repro-line pipeline.
    auto repro = ParseReproLine(minimized->repro_line);
    ASSERT_TRUE(repro.ok());
    auto rerun = RunSingleCase(repro->spec, repro->variant,
                               repro->inject_shard_id_bug);
    ASSERT_TRUE(rerun.ok());
    EXPECT_FALSE(rerun->equal);
}

TEST(DiffTest, MinimizerRejectsPassingCase)
{
    SiteSpec spec = GenerateSiteSpec(42, 0);
    auto result = MinimizeFailure(spec, AllDecomposeVariants().front(),
                                  /*inject_shard_id_bug=*/false);
    EXPECT_FALSE(result.ok());
}

// ---------------------------------------------------------------------------
// The forced-unidirectional hook really changes the lowering: under a
// bidirectional-eligible site the forced variant emits no fused einsum
// pairs (the §5.4.2 signature) while the plain bidi variant does.
// ---------------------------------------------------------------------------

TEST(DiffTest, ForcedUnidirectionalDropsBidirectionalStructure)
{
    SiteSpec spec;
    spec.site_case = SiteCase::kAllGatherFree;
    spec.mesh_dims = {4};
    spec.shard_extent = 2;  // BidirectionalRingEligible
    spec.data_seed = 5;

    auto count_fused_einsums = [&](bool force) -> int64_t {
        auto scenario = BuildSiteScenario(spec);
        EXPECT_TRUE(scenario.ok());
        DecomposeOptions options;
        options.use_cost_model = false;
        options.bidirectional = true;
        options.force_unidirectional = force;
        CostModel cost((HardwareSpec()));
        CollectiveEinsumDecomposer decomposer(*scenario->module->mesh(),
                                              &cost, options);
        EXPECT_TRUE(decomposer.Run(scenario->module->entry()).ok());
        int64_t fused = 0;
        for (const HloInstruction* instr :
             scenario->module->entry()->instructions()) {
            if (instr->opcode() == HloOpcode::kEinsum &&
                instr->fusion_group() >= 0) {
                ++fused;
            }
        }
        return fused;
    };
    EXPECT_GT(count_fused_einsums(false), 0);
    EXPECT_EQ(count_fused_einsums(true), 0);
}

}  // namespace
}  // namespace difftest
}  // namespace overlap
