/**
 * @file
 * Structural tests on the emitted Looped CollectiveEinsum: permute and
 * einsum counts, ring directions and prologue/epilogue shapes for every
 * §5.1/§5.4 variant — complementing the behavioural equivalence sweeps.
 */
#include <gtest/gtest.h>

#include "hlo/builder.h"
#include "hlo/module.h"
#include "passes/decompose.h"
#include "sim/cost_model.h"

namespace overlap {
namespace {

struct Counts {
    int64_t permutes = 0;
    int64_t einsums = 0;
    int64_t copies = 0;
    int64_t left = 0;   // data moving toward lower ring positions
    int64_t right = 0;  // toward higher ring positions
};

Counts
CountLoop(const HloComputation& comp, const Mesh& mesh)
{
    Counts c;
    for (const HloInstruction* instr : comp.instructions()) {
        switch (instr->opcode()) {
          case HloOpcode::kEinsum:
              ++c.einsums;
              break;
          case HloOpcode::kCopy:
              ++c.copies;
              break;
          case HloOpcode::kCollectivePermute: {
              ++c.permutes;
              auto [src, dst] = instr->attrs().source_target_pairs[0];
              int64_t axis = 0;
              for (; axis < mesh.num_axes(); ++axis) {
                  if (mesh.Coords(src)[static_cast<size_t>(axis)] !=
                      mesh.Coords(dst)[static_cast<size_t>(axis)]) {
                      break;
                  }
              }
              int64_t n = mesh.axis_size(axis);
              int64_t delta =
                  (mesh.Coords(dst)[static_cast<size_t>(axis)] -
                       mesh.Coords(src)[static_cast<size_t>(axis)] + n) %
                  n;
              if (delta > n / 2 || (n == 2 && delta == 1)) {
                  // toward lower position (left) for long way around;
                  // n == 2 counted as left for determinism.
                  ++c.left;
              } else {
                  ++c.right;
              }
              break;
          }
          default:
              break;
        }
    }
    return c;
}

Counts
DecomposeAllGather(int64_t n, bool unroll, bool bidi)
{
    Mesh mesh(n);
    HloModule module("m");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* p = b.Parameter(0, Shape(DType::kBF16, {2 * n, 16}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {16, 8}));
    // Shard along the non-contracting dim (Case 1).
    auto* shard = b.Slice(p, {0, 0}, {2, 16});
    auto* ag = b.AllGather(shard, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(ag, w, "bf,fh->bh"));
    CostModel cost{HardwareSpec{}};
    DecomposeOptions options;
    options.use_cost_model = false;
    options.unroll = unroll;
    options.bidirectional = bidi;
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    // Not OVERLAP_CHECK: Release builds compile checks out without
    // evaluating the condition, and the pass must run.
    EXPECT_TRUE(decomposer.Run(comp).ok());
    return CountLoop(*comp, mesh);
}

Counts
DecomposeReduceScatter(int64_t n, bool unroll, bool bidi)
{
    Mesh mesh(n);
    HloModule module("m");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* a = b.Parameter(0, Shape(DType::kBF16, {4 * n, 16}));
    auto* w = b.Parameter(1, Shape(DType::kBF16, {16, 8}));
    auto* e = b.Einsum(a, w, "bf,fh->bh");
    comp->set_root(b.ReduceScatter(e, 0, mesh.Groups(0)));
    CostModel cost{HardwareSpec{}};
    DecomposeOptions options;
    options.use_cost_model = false;
    options.unroll = unroll;
    options.bidirectional = bidi;
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    // Not OVERLAP_CHECK: Release builds compile checks out without
    // evaluating the condition, and the pass must run.
    EXPECT_TRUE(decomposer.Run(comp).ok());
    return CountLoop(*comp, mesh);
}

TEST(LoopStructureTest, UnidirectionalAllGatherHasNMinusOnePermutes)
{
    // Figure 6: N iterations, N-1 circular-shift transfers, all one way.
    for (int64_t n : {2, 4, 8}) {
        Counts c = DecomposeAllGather(n, /*unroll=*/true, /*bidi=*/false);
        EXPECT_EQ(c.permutes, n - 1) << "n=" << n;
        EXPECT_EQ(c.einsums, n) << "n=" << n;
        EXPECT_EQ(c.copies, 0) << "n=" << n;
        EXPECT_TRUE(c.left == c.permutes || c.right == c.permutes)
            << "n=" << n;
    }
}

TEST(LoopStructureTest, NoUnrollAddsAliasCopies)
{
    // §5.4.1: the naive loop carries one Copy per transfer.
    Counts c = DecomposeAllGather(8, /*unroll=*/false, /*bidi=*/false);
    EXPECT_EQ(c.copies, c.permutes);
}

TEST(LoopStructureTest, BidirectionalAllGatherSplitsDirections)
{
    // Figure 9: N/2 iterations; prologue shift + (N/2 - 1) transfers in
    // each direction, paired partial einsums.
    Counts c = DecomposeAllGather(8, /*unroll=*/true, /*bidi=*/true);
    EXPECT_EQ(c.einsums, 8);
    EXPECT_EQ(c.permutes, 2 * (8 / 2 - 1) + 1);
    EXPECT_GT(c.left, 0);
    EXPECT_GT(c.right, 0);
}

TEST(LoopStructureTest, UnidirectionalReduceScatterHasNPermutes)
{
    // Figure 5/7 (single chain): the pre-update accumulator is sent in
    // every iteration, the first one carrying the zero initializer.
    Counts c =
        DecomposeReduceScatter(5, /*unroll=*/false, /*bidi=*/false);
    EXPECT_EQ(c.permutes, 5);
    EXPECT_EQ(c.einsums, 5);
    EXPECT_EQ(c.copies, 5);
}

TEST(LoopStructureTest, TwoChainReduceScatterMatchesFigure8)
{
    // N/2-1 chain-A transfers + N/2 chain-B transfers + the alignment
    // epilogue = N permutes total ("no more data communication").
    for (int64_t n : {4, 8}) {
        Counts c =
            DecomposeReduceScatter(n, /*unroll=*/true, /*bidi=*/false);
        EXPECT_EQ(c.permutes, n) << "n=" << n;
        EXPECT_EQ(c.einsums, n) << "n=" << n;
        EXPECT_EQ(c.copies, 0) << "n=" << n;
    }
    // At n=8 the shift-by-2 hops are unambiguous: the epilogue permute
    // is the single transfer opposite to the accumulation shifts. (At
    // n=4 a shift of 2 is antipodal, so direction is ambiguous.)
    Counts c = DecomposeReduceScatter(8, /*unroll=*/true, /*bidi=*/false);
    EXPECT_EQ(c.right, 1);
}

TEST(LoopStructureTest, BidirectionalReduceScatterUsesBothDirections)
{
    Counts c = DecomposeReduceScatter(8, /*unroll=*/true, /*bidi=*/true);
    EXPECT_EQ(c.einsums, 8);
    // L chain: N/2-1, R chain: N/2, epilogue: 1.
    EXPECT_EQ(c.permutes, 8 / 2 - 1 + 8 / 2 + 1);
    EXPECT_GT(c.left, 0);
    EXPECT_GT(c.right, 0);
}

TEST(LoopStructureTest, TwoWayExchangeAtTwoPartitions)
{
    // N == 2 with bidirectional on: the peer shard's halves travel on
    // both links; three partial einsums (own + two halves).
    Counts c = DecomposeAllGather(2, /*unroll=*/true, /*bidi=*/true);
    EXPECT_EQ(c.permutes, 2);
    EXPECT_EQ(c.einsums, 3);
}

}  // namespace
}  // namespace overlap
