/**
 * @file
 * Quickstart: build a sharded two-layer MLP with the public API, compile
 * it with the overlap pipeline, check it still computes the same values
 * (on the functional SPMD interpreter), and compare simulated step times
 * with and without the technique.
 *
 * This walks the full deliverable chain of the library:
 *   SpmdBuilder -> OverlapCompiler -> SpmdEvaluator / PodSimulator.
 */
#include <cstdio>

#include "core/overlap_compiler.h"
#include "hlo/verifier.h"
#include "interp/evaluator.h"
#include "spmd/spmd_builder.h"
#include "support/strings.h"

using namespace overlap;

namespace {

struct Mlp {
    std::unique_ptr<HloModule> module;
    std::vector<std::vector<Tensor>> params;
    Tensor expected;
    TensorSharding out_sharding;
};

/** Shards a global tensor into one piece per device. */
std::vector<Tensor>
ShardTensor(const Tensor& global, const TensorSharding& sharding,
            const Mesh& mesh)
{
    std::vector<Tensor> shards;
    Shape shard_shape = sharding.ShardShape(global.shape(), mesh);
    for (int64_t d = 0; d < mesh.num_devices(); ++d) {
        shards.push_back(global.Slice(
            sharding.ShardOffsets(global.shape(), mesh, d),
            shard_shape.dims()));
    }
    return shards;
}

Mlp
BuildMlp(const Mesh& mesh)
{
    // The Figure 3 two-layer MLP: activations [B, F] sharded batch-on-y
    // and feature-on-x; weights sharded so the first einsum AllGathers
    // and the second ends in a subgroup ReduceScatter.
    const int64_t kB = 16, kF = 8, kH = 16;
    Mlp mlp;
    mlp.module = std::make_unique<HloModule>("quickstart_mlp");
    mlp.module->set_mesh(mesh);
    HloComputation* comp = mlp.module->AddEntryComputation("main");
    SpmdBuilder spmd(comp, mesh);

    TensorSharding act = TensorSharding::OnDims(2, 0, 1, 1, 0);
    TensorSharding w1s = TensorSharding::OnDims(2, 0, 1, 1, 0);
    TensorSharding w2s = TensorSharding::OnDims(2, 0, 0, 1, 1);
    auto x = spmd.Parameter(0, Shape({kB, kF}), act, "x");
    auto w1 = spmd.Parameter(1, Shape({kF, kH}), w1s, "w1");
    auto w2 = spmd.Parameter(2, Shape({kH, kF}), w2s, "w2");
    auto h = spmd.Einsum(*x, *w1, "bf,fh->bh",
                         TensorSharding::OnDims(2, 0, 1, 1, 0));
    auto y = spmd.Einsum(*h, *w2, "bh,hf->bf", act);
    comp->set_root(y->local);

    Tensor gx = Tensor::Random(Shape({kB, kF}), 1);
    Tensor gw1 = Tensor::Random(Shape({kF, kH}), 2);
    Tensor gw2 = Tensor::Random(Shape({kH, kF}), 3);
    mlp.params = {ShardTensor(gx, act, mesh), ShardTensor(gw1, w1s, mesh),
                  ShardTensor(gw2, w2s, mesh)};
    Tensor hh = EinsumSpec::Parse("bf,fh->bh")->Evaluate(gx, gw1).value();
    mlp.expected =
        EinsumSpec::Parse("bh,hf->bf")->Evaluate(hh, gw2).value();
    mlp.out_sharding = act;
    return mlp;
}

bool
CheckSemantics(const Mlp& mlp, const Mesh& mesh)
{
    SpmdEvaluator evaluator(mesh);
    auto outputs = evaluator.Evaluate(*mlp.module->entry(), mlp.params);
    if (!outputs.ok()) {
        std::printf("evaluation failed: %s\n",
                    outputs.status().ToString().c_str());
        return false;
    }
    Tensor assembled(mlp.expected.shape());
    for (int64_t d = 0; d < mesh.num_devices(); ++d) {
        assembled = assembled.UpdateSlice(
            (*outputs)[static_cast<size_t>(d)],
            mlp.out_sharding.ShardOffsets(mlp.expected.shape(), mesh, d));
    }
    return assembled.AllClose(mlp.expected, 1e-3f);
}

}  // namespace

int
main()
{
    Mesh mesh(2, 4);
    std::printf("== quickstart: 2-layer MLP on an 8-chip [2,4] torus ==\n");

    // 1. Build the sharded program; show the collectives the partitioner
    //    inserted.
    Mlp mlp = BuildMlp(mesh);
    std::printf("\nper-device HLO before the overlap pipeline:\n%s\n",
                mlp.module->ToString().c_str());

    // 2. It computes the right thing.
    std::printf("functional check vs unpartitioned einsums: %s\n",
                CheckSemantics(mlp, mesh) ? "OK" : "MISMATCH");

    // 3. Compile with the paper's pipeline (forcing the rewrite: these
    //    toy shapes are far below the cost model's profitability bar).
    CompilerOptions options;
    options.decompose.use_cost_model = false;
    OverlapCompiler compiler(options);
    auto report = compiler.Compile(mlp.module.get());
    if (!report.ok()) {
        std::printf("compile failed: %s\n",
                    report.status().ToString().c_str());
        return 1;
    }
    std::printf("\noverlap pipeline: decomposed %lld collectives into "
                "%lld async permutes, %lld fusion groups\n",
                static_cast<long long>(
                    report->decompose.total_decomposed()),
                static_cast<long long>(report->async_permutes),
                static_cast<long long>(report->fusion_groups));

    // 4. Still computes the right thing.
    std::printf("functional check after decompose+schedule:      %s\n",
                CheckSemantics(mlp, mesh) ? "OK" : "MISMATCH");

    // 5. Compare simulated step time against the blocking baseline.
    HardwareSpec spec;
    PodSimulator simulator(mesh, spec);
    auto overlapped = simulator.Run(*mlp.module);
    Mlp baseline_mlp = BuildMlp(mesh);
    OverlapCompiler baseline_compiler(CompilerOptions::Baseline());
    (void)baseline_compiler.Compile(baseline_mlp.module.get());
    auto baseline = simulator.Run(*baseline_mlp.module);
    if (overlapped.ok() && baseline.ok()) {
        std::printf("\nsimulated on the TPU-v4-like pod model:\n");
        std::printf("  baseline   %s (exposed comm %s)\n",
                    HumanTime(baseline->step_seconds).c_str(),
                    HumanTime(baseline->exposed_comm_seconds).c_str());
        std::printf("  overlapped %s (exposed comm %s)\n",
                    HumanTime(overlapped->step_seconds).c_str(),
                    HumanTime(overlapped->exposed_comm_seconds).c_str());
        std::printf("(at these toy sizes fixed overheads dominate; run "
                    "the bench/ binaries for the\npaper-scale numbers)\n");
    }
    return 0;
}
