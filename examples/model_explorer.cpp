/**
 * @file
 * Explore any model of the zoo (Tables 1 and 2) under any combination of
 * the paper's features. Compiles the model's representative layer step
 * and simulates it on the pod model.
 *
 * Usage:
 *   model_explorer [model] [--baseline] [--no-unroll] [--no-bidi]
 *                  [--top-down] [--no-cost-model] [--trace]
 *
 * Without arguments, prints the available models.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include <fstream>

#include "core/pod_runner.h"
#include "models/step_builder.h"
#include "sim/trace_export.h"
#include "support/strings.h"

using namespace overlap;

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::printf("usage: %s <model> [--baseline] [--no-unroll] "
                    "[--no-bidi] [--top-down]\n"
                    "          [--no-cost-model] [--trace] "
                    "[--chrome-trace FILE]\n\n",
                    argv[0]);
        std::printf("available models:\n");
        for (const ModelConfig& m : Table1Models()) {
            std::printf("  %s\n", m.ToString().c_str());
        }
        for (const ModelConfig& m : Table2GptModels()) {
            std::printf("  %s\n", m.ToString().c_str());
        }
        return 0;
    }

    const ModelConfig* config = FindModel(argv[1]);
    if (config == nullptr) {
        std::printf("unknown model '%s'\n", argv[1]);
        return 1;
    }
    CompilerOptions options;
    bool trace = false;
    const char* chrome_trace_path = nullptr;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--baseline")) {
            options = CompilerOptions::Baseline();
        } else if (!std::strcmp(argv[i], "--no-unroll")) {
            options.decompose.unroll = false;
        } else if (!std::strcmp(argv[i], "--no-bidi")) {
            options.decompose.bidirectional = false;
        } else if (!std::strcmp(argv[i], "--top-down")) {
            options.scheduler = SchedulerKind::kTopDown;
        } else if (!std::strcmp(argv[i], "--no-cost-model")) {
            options.decompose.use_cost_model = false;
        } else if (!std::strcmp(argv[i], "--trace")) {
            trace = true;
        } else if (!std::strcmp(argv[i], "--chrome-trace") &&
                   i + 1 < argc) {
            chrome_trace_path = argv[++i];
        } else {
            std::printf("unknown flag %s\n", argv[i]);
            return 1;
        }
    }

    std::printf("%s\n", config->ToString().c_str());
    auto report = SimulateModelStep(*config, options);
    if (!report.ok()) {
        std::printf("failed: %s\n", report.status().ToString().c_str());
        return 1;
    }
    std::printf("  decomposed sites: %lld (AllGather %lld, ReduceScatter "
                "%lld; %lld declined by the cost model)\n",
                static_cast<long long>(
                    report->compile.decompose.total_decomposed()),
                static_cast<long long>(
                    report->compile.decompose.allgather_sites),
                static_cast<long long>(
                    report->compile.decompose.reduce_scatter_sites),
                static_cast<long long>(
                    report->compile.decompose.rejected_by_cost_model));
    std::printf("  async permutes: %lld, peak in flight: %lld\n",
                static_cast<long long>(report->compile.async_permutes),
                static_cast<long long>(report->layer.peak_in_flight));
    std::printf("  layer time: %s   step time (x%lld layers): %s\n",
                HumanTime(report->layer.step_seconds).c_str(),
                static_cast<long long>(config->num_layers),
                HumanTime(report->step_seconds).c_str());
    std::printf("  model FLOPS utilization: %.1f%%   exposed "
                "communication: %.1f%%\n",
                report->mfu * 100.0, report->comm_fraction * 100.0);
    std::printf("  step energy: %.2f MJ\n",
                report->energy_joules / 1e6);
    std::printf("  peak live memory per device: %s\n",
                HumanBytes(static_cast<double>(
                               report->layer.peak_memory_bytes))
                    .c_str());

    if (chrome_trace_path != nullptr) {
        auto module = BuildLayerStepModule(*config);
        OverlapCompiler compiler(options);
        (void)compiler.Compile(module->get());
        PodSimulator sim(config->mesh(), options.hardware);
        auto result = sim.Run(**module, /*collect_trace=*/true);
        if (result.ok()) {
            std::ofstream out(chrome_trace_path);
            out << TraceToChromeJson(*result, config->name);
            std::printf("  wrote Chrome trace to %s (open in "
                        "chrome://tracing)\n",
                        chrome_trace_path);
        }
    }

    if (trace) {
        auto module = BuildLayerStepModule(*config);
        OverlapCompiler compiler(options);
        (void)compiler.Compile(module->get());
        PodSimulator sim(config->mesh(), options.hardware);
        auto result = sim.Run(**module, /*collect_trace=*/true);
        if (result.ok()) {
            std::printf("\nlayer timeline (first 60 events):\n");
            int count = 0;
            for (const TraceEvent& ev : result->trace) {
                if (++count > 60) break;
                const char* kind =
                    ev.kind == TraceKind::kCompute ? "compute"
                    : ev.kind == TraceKind::kCollective ? "comm  "
                                                        : "wait  ";
                std::printf("  [%9.2f ms .. %9.2f ms] %s %s\n",
                            ev.start_seconds * 1e3, ev.end_seconds * 1e3,
                            kind, ev.label.c_str());
            }
        }
    }
    return 0;
}
