/**
 * @file
 * The §7.2 discussion made runnable: how the benefit of the overlap
 * technique changes with the interconnect. On fast links (TPU-v4-like,
 * or an NVLink-class GPU cluster) the decomposed transfers hide behind
 * the partial einsums; on slow interconnects the communication time
 * cannot be covered by the concurrent computation and the benefit
 * shrinks — the cost model then starts declining sites altogether.
 */
#include <cstdio>

#include "core/pod_runner.h"
#include "support/strings.h"

using namespace overlap;

int
main()
{
    const ModelConfig* config = FindModel("GPT_64B");
    std::printf("== interconnect sweep on %s ==\n",
                config->name.c_str());
    std::printf("%-24s %10s %10s %9s %10s\n", "link bandwidth/direction",
                "baseline", "overlapped", "speedup", "declined");
    const double bandwidths[] = {200e9, 100e9, 50e9, 25e9, 12.5e9,
                                 6.25e9};
    for (double bw : bandwidths) {
        CompilerOptions baseline_options = CompilerOptions::Baseline();
        CompilerOptions overlap_options;
        baseline_options.hardware.link_bandwidth = bw;
        overlap_options.hardware.link_bandwidth = bw;
        auto baseline = SimulateModelStep(*config, baseline_options);
        auto overlapped = SimulateModelStep(*config, overlap_options);
        if (!baseline.ok() || !overlapped.ok()) {
            std::printf("  %.1f GB/s FAILED\n", bw / 1e9);
            continue;
        }
        std::printf("%18.1f GB/s %10s %10s %8.2fx %10lld\n", bw / 1e9,
                    HumanTime(baseline->step_seconds).c_str(),
                    HumanTime(overlapped->step_seconds).c_str(),
                    baseline->step_seconds / overlapped->step_seconds,
                    static_cast<long long>(
                        overlapped->compile.decompose
                            .rejected_by_cost_model));
    }
    std::printf(
        "\nAs §7.2 predicts: with plenty of bandwidth there is little to "
        "hide, and on very\nslow interconnects the transfers outgrow the "
        "computation that could cover them,\nso the automatic gating "
        "keeps more of the original collectives. The technique\npays the "
        "most in between — exactly where large pods operate.\n");
    return 0;
}
