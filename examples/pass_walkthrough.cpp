/**
 * @file
 * A guided tour of the compiler passes on one AllGather-Einsum pair:
 * prints the HLO after each stage — decomposition (§5.1), asynchronous
 * CollectivePermute creation (§5.2), fusion (§5.4.3) and scheduling —
 * so you can see exactly what the paper's transformation does to the
 * graph.
 */
#include <cstdio>

#include "hlo/builder.h"
#include "hlo/verifier.h"
#include "passes/async.h"
#include "passes/decompose.h"
#include "passes/fusion.h"
#include "passes/schedule.h"

using namespace overlap;

int
main()
{
    Mesh mesh(4);
    HloModule module("walkthrough");
    module.set_mesh(mesh);
    HloComputation* comp = module.AddEntryComputation("main");
    HloBuilder b(comp);
    auto* shard = b.Parameter(0, Shape(DType::kBF16, {512, 1024}),
                              "activation_shard");
    auto* weight = b.Parameter(1, Shape(DType::kBF16, {1024, 2048}),
                               "weight");
    auto* gathered = b.AllGather(shard, 0, mesh.Groups(0));
    comp->set_root(b.Einsum(gathered, weight, "bf,fh->bh"));

    std::printf("=== 0. input: the blocking AllGather-Einsum pair ===\n%s",
                module.ToString().c_str());

    HardwareSpec spec;
    CostModel cost(spec);
    DecomposeOptions options;
    options.use_cost_model = false;
    options.bidirectional = false;  // unidirectional is easier to read
    CollectiveEinsumDecomposer decomposer(mesh, &cost, options);
    auto stats = decomposer.Run(comp);
    if (!stats.ok()) return 1;
    std::printf("\n=== 1. after CollectiveEinsumDecomposer (%lld site) "
                "===\n%s",
                static_cast<long long>(stats->total_decomposed()),
                module.ToString().c_str());

    auto async = CreateAsyncCollectivePermutes(comp);
    if (!async.ok()) return 1;
    std::printf("\n=== 2. after AsyncCollectivePermute creation (%lld "
                "start/done pairs) ===\n%s",
                static_cast<long long>(async.value()),
                module.ToString().c_str());

    auto fused = RunFusionPass(comp, FusionHeuristic::kOverlapAware);
    if (!fused.ok()) return 1;
    std::printf("\n=== 3. after the overlap-aware fusion pass (%lld "
                "groups) ===\n",
                static_cast<long long>(fused.value()));

    if (!ScheduleComputation(comp, cost, SchedulerKind::kBottomUp).ok()) {
        return 1;
    }
    std::printf("\n=== 4. final bottom-up schedule (execution order) "
                "===\n");
    for (const HloInstruction* instr : comp->schedule()) {
        if (instr->shape().rank() == 0 &&
            instr->opcode() != HloOpcode::kTuple) {
            continue;  // skip scalar index arithmetic for readability
        }
        std::printf("  %s\n", instr->ToString().c_str());
    }
    std::printf("\nmodule verifies: %s\n",
                VerifyModule(module).ok() ? "OK" : "BROKEN");
    return 0;
}
